//! Per-node routing tables with k next-hop alternatives per destination.
//!
//! Storage is a dense arena rather than a per-entry map: a sorted vector of
//! destinations plus a flat arena with exactly `k` route slots per
//! destination. Zone sizes are small (the paper works with 5–50 nodes per
//! zone), so binary search over the destination vector beats pointer-chasing
//! a tree, and the arena is reused across rebuilds without reallocating
//! (`clear` keeps capacity).
//!
//! The arena itself comes in two layouts selected by [`TableLayout`]:
//!
//! - **SoA** (the default): three parallel planes — a contiguous `f64` cost
//!   plane, a `NodeId` next-hop plane, and a `u32` hop-count plane — so the
//!   relaxation scan in [`RoutingTable::offer`] walks a flat numeric strip
//!   with no struct-stride gathers, and `remove_dests` compacts all planes
//!   in lockstep with three `copy_within` calls per surviving row.
//! - **AoS**: the original flat `[RouteEntry]` block layout, kept intact as
//!   the differential oracle. The layout proptests replay identical
//!   offer/remove/churn sequences against both arenas and assert
//!   bit-identical tables (same playbook as the DBF oracle chain).
//!
//! Because entries no longer sit contiguously in one buffer, the read API
//! hands out routes **by value** (`RouteEntry` is `Copy`): [`RoutingTable::best`]
//! returns `Option<RouteEntry>` and [`RoutingTable::routes_to`] returns a
//! [`Routes`] view instead of a slice.

use spms_net::NodeId;

/// One route alternative: reach the destination through neighbor `via` at
/// total cost `cost` over `hops` hops.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RouteEntry {
    /// The next-hop zone neighbor.
    pub via: NodeId,
    /// Total path cost (sum of per-link minimum transmit powers, mW).
    pub cost: f64,
    /// Path length in hops.
    pub hops: u32,
}

/// Unoccupied arena slot. Never observable through the public API: only the
/// first `lens[i]` slots of a destination's `k`-slot block are live.
const VACANT: RouteEntry = RouteEntry {
    via: NodeId::new(u32::MAX),
    cost: f64::INFINITY,
    hops: u32::MAX,
};

/// Costs within this distance are ties (floating-point sums of identical
/// link weights can differ by an ULP depending on the path); ties break
/// toward fewer hops, then the smaller neighbor id — the same rule as the
/// Dijkstra oracle, so the two constructions agree exactly.
const COST_EPS: f64 = 1e-12;

/// Strict route order: cost (with the epsilon tie window), then hops, then
/// neighbor id. Total on distinct-via entries.
fn route_cmp(a: &RouteEntry, b: &RouteEntry) -> std::cmp::Ordering {
    if (a.cost - b.cost).abs() <= COST_EPS {
        a.hops.cmp(&b.hops).then_with(|| a.via.cmp(&b.via))
    } else {
        a.cost
            .partial_cmp(&b.cost)
            .unwrap_or(std::cmp::Ordering::Equal)
    }
}

/// `true` when two entries are indistinguishable under the epsilon rule —
/// an offer replacing an entry with an indistinguishable one is not a
/// change (and must not trigger another broadcast round).
fn route_eq(a: &RouteEntry, b: &RouteEntry) -> bool {
    a.via == b.via && a.hops == b.hops && (a.cost - b.cost).abs() <= COST_EPS
}

/// Scalar twin of `route_cmp(..) == Ordering::Less` for the plane kernel:
/// `true` when the entry `(cost, hops, via)` orders strictly before
/// `entry`. Must stay semantically identical to `route_cmp` — the layout
/// differential suite holds the two arenas bit-identical.
#[inline(always)]
fn plane_less(cost: f64, hops: u32, via: NodeId, entry: &RouteEntry) -> bool {
    let d = cost - entry.cost;
    if d.abs() <= COST_EPS {
        hops < entry.hops || (hops == entry.hops && via < entry.via)
    } else {
        // NaN costs fall here with both comparisons false — the same
        // "unordered means equal" behavior as route_cmp's partial_cmp.
        d < 0.0
    }
}

/// Physical arena layout of a [`RoutingTable`], selected per table (and, at
/// the simulation level, by `SimConfig::table_layout`).
///
/// The layouts are observationally identical — the layout-differential
/// proptest suite replays identical operation sequences against both and
/// asserts bit-identical tables — so this is purely a performance knob.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum TableLayout {
    /// Struct-of-arrays planes (cost / next-hop / hops): the branch-light
    /// relaxation kernel. The default.
    #[default]
    Soa,
    /// Array-of-structs flat `RouteEntry` blocks: the original layout,
    /// retained as the differential oracle.
    Aos,
}

impl TableLayout {
    /// Stable lowercase label (CLI flag values, bench ids, logs).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            TableLayout::Soa => "soa",
            TableLayout::Aos => "aos",
        }
    }
}

impl std::fmt::Display for TableLayout {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

impl std::str::FromStr for TableLayout {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "soa" => Ok(TableLayout::Soa),
            "aos" => Ok(TableLayout::Aos),
            other => Err(format!("unknown table layout `{other}` (soa|aos)")),
        }
    }
}

/// The slot storage behind a [`RoutingTable`]: `k` slots per destination,
/// best-first, in one of the two [`TableLayout`]s.
#[derive(Clone)]
enum Arena {
    /// Flat `RouteEntry` blocks.
    Aos { slots: Vec<RouteEntry> },
    /// Parallel planes, index-aligned with each other, plus a direct-map
    /// destination index.
    Soa {
        via: Vec<NodeId>,
        cost: Vec<f64>,
        hops: Vec<u32>,
        /// Destination index plane: `slot_of[dest.index()]` is the
        /// destination's arena position **plus one** (`0` = absent), so the
        /// hot relaxation path replaces the per-offer binary search with a
        /// single load. Destinations are node ids, so this plane is
        /// `O(max id)` words per table — `O(n)` at the simulator's scales,
        /// where every table already holds `O(zone)` route slots.
        slot_of: Vec<u32>,
    },
}

impl Arena {
    fn empty(layout: TableLayout) -> Self {
        match layout {
            TableLayout::Aos => Arena::Aos { slots: Vec::new() },
            TableLayout::Soa => Arena::Soa {
                via: Vec::new(),
                cost: Vec::new(),
                hops: Vec::new(),
                slot_of: Vec::new(),
            },
        }
    }

    fn layout(&self) -> TableLayout {
        match self {
            Arena::Aos { .. } => TableLayout::Aos,
            Arena::Soa { .. } => TableLayout::Soa,
        }
    }

    /// The entry at flat slot index `idx` (live or vacant), by value.
    #[inline]
    fn entry(&self, idx: usize) -> RouteEntry {
        match self {
            Arena::Aos { slots } => slots[idx],
            Arena::Soa {
                via, cost, hops, ..
            } => RouteEntry {
                via: via[idx],
                cost: cost[idx],
                hops: hops[idx],
            },
        }
    }

    #[inline]
    fn write(&mut self, idx: usize, e: RouteEntry) {
        match self {
            Arena::Aos { slots } => slots[idx] = e,
            Arena::Soa {
                via, cost, hops, ..
            } => {
                via[idx] = e.via;
                cost[idx] = e.cost;
                hops[idx] = e.hops;
            }
        }
    }

    /// Splices `k` vacant slots in at flat index `base` (new destination).
    fn splice_vacant(&mut self, base: usize, k: usize) {
        match self {
            Arena::Aos { slots } => {
                slots.splice(base..base, std::iter::repeat_n(VACANT, k));
            }
            Arena::Soa {
                via, cost, hops, ..
            } => {
                via.splice(base..base, std::iter::repeat_n(VACANT.via, k));
                cost.splice(base..base, std::iter::repeat_n(VACANT.cost, k));
                hops.splice(base..base, std::iter::repeat_n(VACANT.hops, k));
            }
        }
    }

    /// Copies the `k`-slot block at `src` over the block at `dst`
    /// (lockstep across planes in the SoA layout).
    fn copy_block(&mut self, src: usize, dst: usize, k: usize) {
        match self {
            Arena::Aos { slots } => slots.copy_within(src..src + k, dst),
            Arena::Soa {
                via, cost, hops, ..
            } => {
                via.copy_within(src..src + k, dst);
                cost.copy_within(src..src + k, dst);
                hops.copy_within(src..src + k, dst);
            }
        }
    }

    /// Removes the `k`-slot block at `base`, shifting later blocks down.
    fn drain_block(&mut self, base: usize, k: usize) {
        match self {
            Arena::Aos { slots } => {
                slots.drain(base..base + k);
            }
            Arena::Soa {
                via, cost, hops, ..
            } => {
                via.drain(base..base + k);
                cost.drain(base..base + k);
                hops.drain(base..base + k);
            }
        }
    }

    fn truncate(&mut self, n: usize) {
        match self {
            Arena::Aos { slots } => slots.truncate(n),
            Arena::Soa {
                via, cost, hops, ..
            } => {
                via.truncate(n);
                cost.truncate(n);
                hops.truncate(n);
            }
        }
    }

    /// Clears all slots, keeping capacity (rebuilds do not reallocate).
    fn clear(&mut self) {
        match self {
            Arena::Aos { slots } => slots.clear(),
            Arena::Soa {
                via,
                cost,
                hops,
                slot_of,
            } => {
                via.clear();
                cost.clear();
                hops.clear();
                // An empty index plane means "every destination absent";
                // inserts re-grow it (zero-filled) on demand, so clearing
                // beats an O(max id) memset per rebuild.
                slot_of.clear();
            }
        }
    }
}

/// The k-slot block merge shared by `offer` and `offer_ascending`, AoS
/// layout. `block` is the destination's full `k`-slot block, `len` its live
/// prefix. Returns `(changed, new_len)`.
///
/// This is the **oracle kernel** — byte-for-byte the pre-SoA behavior. Note
/// the asymmetric rank computation: the replace arm counts lesser entries
/// over the whole live prefix (excluding the replaced slot) while the
/// insert arm stops at the first non-lesser entry. Under the non-transitive
/// epsilon comparator those can differ for costs spaced ~`COST_EPS` apart,
/// so [`offer_block_soa`] replicates each arm exactly rather than sharing
/// one rank routine.
fn offer_block_aos(block: &mut [RouteEntry], len: usize, entry: RouteEntry) -> (bool, usize) {
    let k = block.len();
    let existing = block[..len].iter().position(|e| e.via == entry.via);

    match existing {
        Some(i) => {
            // Insertion index of `entry` among the other len-1 entries.
            let j = block[..len]
                .iter()
                .enumerate()
                .filter(|&(u, _)| u != i)
                .filter(|&(_, e)| route_cmp(e, &entry) == std::cmp::Ordering::Less)
                .count();
            if j == i && route_eq(&block[i], &entry) {
                return (false, len);
            }
            if j <= i {
                block[j..=i].rotate_right(1);
            } else {
                block[i..=j].rotate_left(1);
            }
            block[j] = entry;
            (true, len)
        }
        None => {
            let j = block[..len]
                .iter()
                .take_while(|e| route_cmp(e, &entry) == std::cmp::Ordering::Less)
                .count();
            if len < k {
                block[j..=len].rotate_right(1);
                block[j] = entry;
                (true, len + 1)
            } else if j == k {
                (false, len) // worse than every retained alternative
            } else {
                block[j..k].rotate_right(1);
                block[j] = entry;
                (true, len)
            }
        }
    }
}

/// The SoA twin of [`offer_block_aos`]: the same branch structure executed
/// against the parallel planes as tight scalar loops. The existing-via scan
/// reads only the `u32` next-hop plane; the rank pass compares against the
/// contiguous `f64` cost strip. Each arm mirrors its AoS counterpart's
/// exact rank semantics (full count vs first-non-less early exit) so the
/// two layouts stay bit-identical.
fn offer_block_soa(
    via: &mut [NodeId],
    cost: &mut [f64],
    hops: &mut [u32],
    len: usize,
    entry: RouteEntry,
) -> (bool, usize) {
    let k = via.len();
    let mut existing = len;
    for (u, &v) in via[..len].iter().enumerate() {
        if v == entry.via {
            existing = u;
            break;
        }
    }

    if existing < len {
        let i = existing;
        // Insertion index among the other len-1 entries: branch-free
        // accumulation over the cost strip.
        let mut j = 0usize;
        for u in 0..len {
            j += usize::from(u != i && plane_less(cost[u], hops[u], via[u], &entry));
        }
        if j == i && hops[i] == entry.hops && (cost[i] - entry.cost).abs() <= COST_EPS {
            return (false, len);
        }
        if j <= i {
            via[j..=i].rotate_right(1);
            cost[j..=i].rotate_right(1);
            hops[j..=i].rotate_right(1);
        } else {
            via[i..=j].rotate_left(1);
            cost[i..=j].rotate_left(1);
            hops[i..=j].rotate_left(1);
        }
        via[j] = entry.via;
        cost[j] = entry.cost;
        hops[j] = entry.hops;
        (true, len)
    } else {
        let mut j = 0usize;
        while j < len && plane_less(cost[j], hops[j], via[j], &entry) {
            j += 1;
        }
        if len < k {
            via[j..=len].rotate_right(1);
            cost[j..=len].rotate_right(1);
            hops[j..=len].rotate_right(1);
            via[j] = entry.via;
            cost[j] = entry.cost;
            hops[j] = entry.hops;
            (true, len + 1)
        } else if j == k {
            (false, len) // worse than every retained alternative
        } else {
            via[j..k].rotate_right(1);
            cost[j..k].rotate_right(1);
            hops[j..k].rotate_right(1);
            via[j] = entry.via;
            cost[j] = entry.cost;
            hops[j] = entry.hops;
            (true, len)
        }
    }
}

/// [`offer_block_soa`] unrolled for `k == 2`, the paper's configuration.
/// Every arm is a hand-expansion of the generic code at `len ∈ {0, 1, 2}`
/// — same existing-via scan, same asymmetric rank rules, same rotations —
/// which the layout differential suite pins against the AoS oracle.
#[inline(always)]
fn offer_block_soa2(
    via: &mut [NodeId],
    cost: &mut [f64],
    hops: &mut [u32],
    len: usize,
    e: RouteEntry,
) -> (bool, usize) {
    if len == 0 {
        via[0] = e.via;
        cost[0] = e.cost;
        hops[0] = e.hops;
        return (true, 1);
    }
    let v0 = via[0];
    if len == 1 {
        if v0 == e.via {
            // Replace the only entry (rank stays 0): a no-change offer
            // must not report a change.
            if hops[0] == e.hops && (cost[0] - e.cost).abs() <= COST_EPS {
                return (false, 1);
            }
            cost[0] = e.cost;
            hops[0] = e.hops;
            return (true, 1);
        }
        if plane_less(cost[0], hops[0], v0, &e) {
            via[1] = e.via;
            cost[1] = e.cost;
            hops[1] = e.hops;
        } else {
            via[1] = v0;
            cost[1] = cost[0];
            hops[1] = hops[0];
            via[0] = e.via;
            cost[0] = e.cost;
            hops[0] = e.hops;
        }
        return (true, 2);
    }
    // len == 2: both slots live.
    let v1 = via[1];
    if v0 == e.via {
        // Replacing the best: rank among {slot 1} decides stay-or-swap.
        if !plane_less(cost[1], hops[1], v1, &e) {
            if hops[0] == e.hops && (cost[0] - e.cost).abs() <= COST_EPS {
                return (false, 2);
            }
            cost[0] = e.cost;
            hops[0] = e.hops;
        } else {
            via[0] = v1;
            cost[0] = cost[1];
            hops[0] = hops[1];
            via[1] = e.via;
            cost[1] = e.cost;
            hops[1] = e.hops;
        }
        (true, 2)
    } else if v1 == e.via {
        // Replacing the alternative: rank among {slot 0}.
        if plane_less(cost[0], hops[0], v0, &e) {
            if hops[1] == e.hops && (cost[1] - e.cost).abs() <= COST_EPS {
                return (false, 2);
            }
            cost[1] = e.cost;
            hops[1] = e.hops;
        } else {
            via[1] = v0;
            cost[1] = cost[0];
            hops[1] = hops[0];
            via[0] = e.via;
            cost[0] = e.cost;
            hops[0] = e.hops;
        }
        (true, 2)
    } else if !plane_less(cost[0], hops[0], v0, &e) {
        // New neighbor ranked best: old best becomes the alternative, the
        // old alternative is evicted.
        via[1] = v0;
        cost[1] = cost[0];
        hops[1] = hops[0];
        via[0] = e.via;
        cost[0] = e.cost;
        hops[0] = e.hops;
        (true, 2)
    } else if !plane_less(cost[1], hops[1], v1, &e) {
        // New neighbor evicts the alternative.
        via[1] = e.via;
        cost[1] = e.cost;
        hops[1] = e.hops;
        (true, 2)
    } else {
        (false, 2) // worse than both retained alternatives
    }
}

/// A node's routing table: for each in-zone destination, up to `k` route
/// alternatives sorted best-first.
///
/// Entries are keyed by next-hop neighbor: at most one entry per `via` per
/// destination, mirroring the paper's "cost of going to the destination
/// through each of its neighbors" (truncated to the best `k`).
///
/// # Example
///
/// ```
/// use spms_net::NodeId;
/// use spms_routing::{RouteEntry, RoutingTable, TableLayout};
///
/// let mut t = RoutingTable::new(2); // SoA planes by default
/// let d = NodeId::new(9);
/// t.offer(d, RouteEntry { via: NodeId::new(1), cost: 0.5, hops: 2 });
/// t.offer(d, RouteEntry { via: NodeId::new(2), cost: 0.2, hops: 3 });
/// assert_eq!(t.best(d).unwrap().via, NodeId::new(2));
/// assert_eq!(t.alternative(d, 1).unwrap().via, NodeId::new(1));
///
/// // The AoS oracle builds the identical table from the same offers.
/// let mut oracle = RoutingTable::with_layout(2, TableLayout::Aos);
/// oracle.offer(d, RouteEntry { via: NodeId::new(1), cost: 0.5, hops: 2 });
/// oracle.offer(d, RouteEntry { via: NodeId::new(2), cost: 0.2, hops: 3 });
/// assert_eq!(t, oracle);
/// ```
#[derive(Clone)]
pub struct RoutingTable {
    /// Destinations with at least one route, sorted by id.
    dests: Vec<NodeId>,
    /// Live routes per destination (`lens[i] <= k`).
    lens: Vec<u32>,
    /// The slot storage: `k` slots per destination, best-first.
    arena: Arena,
    k: usize,
}

impl RoutingTable {
    /// Creates an empty table keeping at most `k` alternatives per
    /// destination, in the default (SoA) layout.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    #[must_use]
    pub fn new(k: usize) -> Self {
        Self::with_layout(k, TableLayout::default())
    }

    /// Creates an empty table in an explicit arena layout.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    #[must_use]
    pub fn with_layout(k: usize, layout: TableLayout) -> Self {
        assert!(k > 0, "k must be at least 1");
        RoutingTable {
            dests: Vec::new(),
            lens: Vec::new(),
            arena: Arena::empty(layout),
            k,
        }
    }

    /// The configured number of alternatives.
    #[must_use]
    pub fn k(&self) -> usize {
        self.k
    }

    /// The arena layout this table currently stores routes in.
    #[must_use]
    pub fn layout(&self) -> TableLayout {
        self.arena.layout()
    }

    /// Re-stores the table's contents in `layout` (no-op when already
    /// there). Logical content is preserved exactly; only the physical
    /// arena changes.
    pub fn convert_layout(&mut self, layout: TableLayout) {
        if self.arena.layout() == layout {
            return;
        }
        let total = self.dests.len() * self.k;
        let mut next = Arena::empty(layout);
        match &mut next {
            Arena::Aos { slots } => slots.reserve(total),
            Arena::Soa {
                via, cost, hops, ..
            } => {
                via.reserve(total);
                cost.reserve(total);
                hops.reserve(total);
            }
        }
        for idx in 0..total {
            let e = self.arena.entry(idx);
            match &mut next {
                Arena::Aos { slots } => slots.push(e),
                Arena::Soa {
                    via, cost, hops, ..
                } => {
                    via.push(e.via);
                    cost.push(e.cost);
                    hops.push(e.hops);
                }
            }
        }
        self.arena = next;
        self.rebuild_slot_index();
    }

    /// Index of `dest` in the arena, if present. The SoA arena answers from
    /// its destination index plane in one load; the AoS oracle keeps the
    /// original binary search.
    #[inline]
    fn pos(&self, dest: NodeId) -> Option<usize> {
        match &self.arena {
            Arena::Soa { slot_of, .. } => match slot_of.get(dest.index()) {
                Some(&s) if s != 0 => Some((s - 1) as usize),
                _ => None,
            },
            Arena::Aos { .. } => self.dests.binary_search(&dest).ok(),
        }
    }

    /// Offers a route to `dest`; returns `true` if the table changed (the
    /// trigger condition for re-broadcasting a distance vector).
    ///
    /// If an entry via the same neighbor exists it is replaced when the new
    /// route differs (distance vectors report the neighbor's current truth,
    /// not an improvement offer); the block stays sorted and truncated to
    /// `k`. An offer that does not make the top `k` is not a change — it
    /// must not trigger another broadcast round, or the exchange would
    /// never quiesce.
    #[inline]
    pub fn offer(&mut self, dest: NodeId, entry: RouteEntry) -> bool {
        // Hot path: the SoA index plane resolves a known destination in one
        // load. Misses (and the AoS oracle) fall through to the binary
        // search, which doubles as the insertion point.
        if let Arena::Soa { slot_of, .. } = &self.arena {
            if let Some(&s) = slot_of.get(dest.index()) {
                if s != 0 {
                    return self.offer_at((s - 1) as usize, entry);
                }
            }
        }
        let pos = match self.dests.binary_search(&dest) {
            Ok(p) => p,
            Err(p) => {
                self.insert_dest_at(p, dest);
                p
            }
        };
        self.offer_at(pos, entry)
    }

    /// [`RoutingTable::offer`] with the destination binary search hoisted
    /// out of the k-slot scan and bounded below by an ascending cursor.
    ///
    /// Distance-vector replay offers a vector's entries in destination-id
    /// order (tables iterate in id order and delta vectors come from
    /// ordered sets), so a receiver applying one vector can carry a cursor:
    /// each lookup searches only the destinations **past the previous
    /// hit** instead of the whole array — the dominant per-entry cost of
    /// the DBF inner loop shrinks with every entry applied. Reset the
    /// cursor to `0` at the start of every vector. The table mutation is
    /// exactly `offer`'s (shared block merge), so results are identical
    /// entry for entry.
    ///
    /// Destinations offered through one cursor must arrive in strictly
    /// ascending id order (debug-asserted).
    #[inline]
    pub fn offer_ascending(&mut self, dest: NodeId, entry: RouteEntry, cursor: &mut usize) -> bool {
        let lb = (*cursor).min(self.dests.len());
        debug_assert!(
            lb == 0 || self.dests[lb - 1] < dest,
            "offer_ascending needs strictly ascending destinations per cursor"
        );
        // Known destinations resolve through the SoA index plane exactly as
        // in `offer`; the cursor still advances so later misses search only
        // past this hit.
        if let Arena::Soa { slot_of, .. } = &self.arena {
            if let Some(&s) = slot_of.get(dest.index()) {
                if s != 0 {
                    let pos = (s - 1) as usize;
                    *cursor = pos + 1;
                    return self.offer_at(pos, entry);
                }
            }
        }
        let pos = match self.dests[lb..].binary_search(&dest) {
            Ok(p) => lb + p,
            Err(p) => {
                let p = lb + p;
                self.insert_dest_at(p, dest);
                p
            }
        };
        *cursor = pos + 1;
        self.offer_at(pos, entry)
    }

    /// Inserts an empty `k`-slot block for `dest` at arena position `p`.
    fn insert_dest_at(&mut self, p: usize, dest: NodeId) {
        let k = self.k;
        self.dests.insert(p, dest);
        self.lens.insert(p, 0);
        self.arena.splice_vacant(p * k, k);
        if let Arena::Soa { slot_of, .. } = &mut self.arena {
            let i = dest.index();
            if slot_of.len() <= i {
                slot_of.resize(i + 1, 0);
            }
            slot_of[i] = (p + 1) as u32;
            // Everything after the insertion point shifted up one row —
            // same O(tail) the `Vec::insert`s above already pay.
            for d in &self.dests[p + 1..] {
                slot_of[d.index()] += 1;
            }
        }
    }

    /// The k-slot block merge shared by [`RoutingTable::offer`] and
    /// [`RoutingTable::offer_ascending`]: dispatches once on the arena
    /// layout, then runs the layout's kernel on the block at `pos`.
    #[inline]
    fn offer_at(&mut self, pos: usize, entry: RouteEntry) -> bool {
        let k = self.k;
        let base = pos * k;
        let len = self.lens[pos] as usize;
        let (changed, new_len) = match &mut self.arena {
            Arena::Aos { slots } => offer_block_aos(&mut slots[base..base + k], len, entry),
            // The k dispatch happens here, outside the generic kernel, so
            // the hot k = 2 case inlines without dragging the generic body
            // along.
            Arena::Soa {
                via, cost, hops, ..
            } if k == 2 => offer_block_soa2(
                &mut via[base..base + 2],
                &mut cost[base..base + 2],
                &mut hops[base..base + 2],
                len,
                entry,
            ),
            Arena::Soa {
                via, cost, hops, ..
            } => offer_block_soa(
                &mut via[base..base + k],
                &mut cost[base..base + k],
                &mut hops[base..base + k],
                len,
                entry,
            ),
        };
        self.lens[pos] = new_len as u32;
        changed
    }

    /// The best route to `dest`, if any.
    #[must_use]
    pub fn best(&self, dest: NodeId) -> Option<RouteEntry> {
        let p = self.pos(dest)?;
        (self.lens[p] > 0).then(|| self.arena.entry(p * self.k))
    }

    /// The `i`-th best route to `dest` (0 = best).
    #[must_use]
    pub fn alternative(&self, dest: NodeId, i: usize) -> Option<RouteEntry> {
        let p = self.pos(dest)?;
        (i < self.lens[p] as usize).then(|| self.arena.entry(p * self.k + i))
    }

    /// All alternatives to `dest`, best first, as a by-value view.
    #[must_use]
    pub fn routes_to(&self, dest: NodeId) -> Routes<'_> {
        match self.pos(dest) {
            Some(p) => Routes {
                table: self,
                base: p * self.k,
                len: self.lens[p] as usize,
            },
            None => Routes {
                table: self,
                base: 0,
                len: 0,
            },
        }
    }

    /// The best route to `dest` that does not go through `avoid` — the
    /// lookup used when a next hop is suspected failed.
    #[must_use]
    pub fn best_avoiding(&self, dest: NodeId, avoid: NodeId) -> Option<RouteEntry> {
        self.routes_to(dest).iter().find(|e| e.via != avoid)
    }

    /// Destinations with at least one route, in id order.
    pub fn destinations(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.dests.iter().copied()
    }

    /// `(destination, routes)` pairs in id order — the arena walk used to
    /// build distance vectors without per-destination lookups.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, Routes<'_>)> + '_ {
        self.dests.iter().enumerate().map(move |(p, &d)| {
            (
                d,
                Routes {
                    table: self,
                    base: p * self.k,
                    len: self.lens[p] as usize,
                },
            )
        })
    }

    /// Appends `(dest, best_cost, best_hops)` for every destination to
    /// `out` — the whole-table flattening the DBF snapshot loops use to
    /// build full distance vectors. In the SoA layout this walks the cost
    /// and hops planes directly (stride `k`) without materializing
    /// `RouteEntry` values; in AoS it reads the first slot per block.
    pub fn append_vector(&self, out: &mut Vec<(NodeId, f64, u32)>) {
        let k = self.k;
        match &self.arena {
            Arena::Aos { slots } => out.extend(self.dests.iter().enumerate().map(|(p, &d)| {
                let e = slots[p * k];
                (d, e.cost, e.hops)
            })),
            Arena::Soa { cost, hops, .. } => out.extend(
                self.dests
                    .iter()
                    .enumerate()
                    .map(|(p, &d)| (d, cost[p * k], hops[p * k])),
            ),
        }
    }

    /// Number of destinations.
    #[must_use]
    pub fn len(&self) -> usize {
        self.dests.len()
    }

    /// `true` when no destinations are known.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.dests.is_empty()
    }

    /// Total entries across destinations (for wire-size accounting).
    #[must_use]
    pub fn total_entries(&self) -> usize {
        self.lens.iter().map(|&l| l as usize).sum()
    }

    /// Removes every route whose next hop is `via`; returns `true` if
    /// anything was removed. Destinations left with no routes are dropped.
    pub fn purge_via(&mut self, via: NodeId) -> bool {
        let mut changed = false;
        for p in (0..self.dests.len()).rev() {
            let base = p * self.k;
            let len = self.lens[p] as usize;
            let mut kept = 0;
            for i in 0..len {
                let e = self.arena.entry(base + i);
                if e.via != via {
                    if kept != i {
                        self.arena.write(base + kept, e);
                    }
                    kept += 1;
                }
            }
            if kept == len {
                continue;
            }
            changed = true;
            for i in kept..len {
                self.arena.write(base + i, VACANT);
            }
            self.lens[p] = kept as u32;
            if kept == 0 {
                self.remove_at(p);
            }
        }
        changed
    }

    /// Removes every route to `dest`; returns `true` if the destination was
    /// present. Used by the incremental DBF to invalidate the routes a
    /// topology change may have broken before re-converging them.
    pub fn remove_dest(&mut self, dest: NodeId) -> bool {
        match self.pos(dest) {
            Some(p) => {
                self.remove_at(p);
                true
            }
            None => false,
        }
    }

    /// Removes every route to each destination in `dests` — which must be
    /// sorted ascending and distinct — in **one** compaction pass over the
    /// arena; returns how many destinations were actually present. The
    /// incremental DBF's invalidation wipes whole affected-destination
    /// sets per table, where repeated [`RoutingTable::remove_dest`] calls
    /// would shift the arena once per destination; batched windows make
    /// those sets large enough for the difference to matter. All planes
    /// compact in lockstep in the SoA layout.
    pub fn remove_dests(&mut self, dests: &[NodeId]) -> usize {
        debug_assert!(
            dests.windows(2).all(|w| w[0] < w[1]),
            "remove_dests needs a sorted, distinct destination set"
        );
        let k = self.k;
        let mut kept = 0usize;
        let mut cursor = 0usize;
        for p in 0..self.dests.len() {
            let d = self.dests[p];
            while cursor < dests.len() && dests[cursor] < d {
                cursor += 1;
            }
            if cursor < dests.len() && dests[cursor] == d {
                continue; // dropped: later rows compact over it
            }
            if kept != p {
                self.dests[kept] = d;
                self.lens[kept] = self.lens[p];
                self.arena.copy_block(p * k, kept * k, k);
            }
            kept += 1;
        }
        let removed = self.dests.len() - kept;
        self.dests.truncate(kept);
        self.lens.truncate(kept);
        self.arena.truncate(kept * k);
        if removed > 0 {
            self.rebuild_slot_index();
        }
        removed
    }

    /// Rebuilds the SoA destination index plane from the destination vector
    /// (no-op in AoS). Used after batch compactions, where per-row index
    /// maintenance would cost more than one rebuild.
    fn rebuild_slot_index(&mut self) {
        if let Arena::Soa { slot_of, .. } = &mut self.arena {
            slot_of.clear();
            for (p, d) in self.dests.iter().enumerate() {
                let i = d.index();
                if slot_of.len() <= i {
                    slot_of.resize(i + 1, 0);
                }
                slot_of[i] = (p + 1) as u32;
            }
        }
    }

    fn remove_at(&mut self, p: usize) {
        let dest = self.dests.remove(p);
        self.lens.remove(p);
        self.arena.drain_block(p * self.k, self.k);
        if let Arena::Soa { slot_of, .. } = &mut self.arena {
            slot_of[dest.index()] = 0;
            for d in &self.dests[p..] {
                slot_of[d.index()] -= 1;
            }
        }
    }

    /// Clears the table (used when DBF re-executes from scratch). Keeps the
    /// arena's capacity so rebuilds do not reallocate, and keeps the
    /// configured layout.
    pub fn clear(&mut self) {
        self.dests.clear();
        self.lens.clear();
        self.arena.clear();
    }
}

impl PartialEq for RoutingTable {
    /// Live entries only, layout-blind: a SoA table equals the AoS table
    /// holding the same routes (vacant arena slots never affect equality).
    fn eq(&self, other: &Self) -> bool {
        self.k == other.k
            && self.dests == other.dests
            && self.lens == other.lens
            && self.iter().zip(other.iter()).all(|(a, b)| a.1 == b.1)
    }
}

impl std::fmt::Debug for RoutingTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut m = f.debug_map();
        for (d, routes) in self.iter() {
            m.entry(&d, &routes);
        }
        m.finish()
    }
}

/// A borrowed, by-value view of one destination's live routes, best first.
///
/// The SoA arena has no contiguous `[RouteEntry]` to hand out, so this view
/// replaces the slice the pre-SoA `routes_to` returned: it is `Copy`,
/// iterates `RouteEntry` **values**, and compares layout-blind (a view into
/// a SoA table equals the view of the same routes in an AoS table).
#[derive(Clone, Copy)]
pub struct Routes<'a> {
    table: &'a RoutingTable,
    base: usize,
    len: usize,
}

impl Routes<'_> {
    /// Number of live routes in the view.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when the destination has no routes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The `i`-th best route (0 = best), if live.
    #[must_use]
    pub fn get(&self, i: usize) -> Option<RouteEntry> {
        (i < self.len).then(|| self.table.arena.entry(self.base + i))
    }

    /// Iterates the live routes by value, best first.
    #[must_use]
    pub fn iter(&self) -> RoutesIter<'_> {
        RoutesIter {
            routes: *self,
            front: 0,
        }
    }

    /// Collects the live routes into a `Vec` (for slice-style access such
    /// as `windows`).
    #[must_use]
    pub fn to_vec(&self) -> Vec<RouteEntry> {
        self.iter().collect()
    }
}

impl PartialEq for Routes<'_> {
    fn eq(&self, other: &Self) -> bool {
        self.len == other.len && self.iter().eq(other.iter())
    }
}

impl std::fmt::Debug for Routes<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_list().entries(self.iter()).finish()
    }
}

impl<'a> IntoIterator for Routes<'a> {
    type Item = RouteEntry;
    type IntoIter = RoutesIter<'a>;

    fn into_iter(self) -> Self::IntoIter {
        RoutesIter {
            routes: self,
            front: 0,
        }
    }
}

impl<'a> IntoIterator for &Routes<'a> {
    type Item = RouteEntry;
    type IntoIter = RoutesIter<'a>;

    fn into_iter(self) -> Self::IntoIter {
        RoutesIter {
            routes: *self,
            front: 0,
        }
    }
}

/// Iterator over a [`Routes`] view, yielding `RouteEntry` values.
pub struct RoutesIter<'a> {
    routes: Routes<'a>,
    front: usize,
}

impl Iterator for RoutesIter<'_> {
    type Item = RouteEntry;

    fn next(&mut self) -> Option<RouteEntry> {
        let e = self.routes.get(self.front)?;
        self.front += 1;
        Some(e)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rest = self.routes.len - self.front;
        (rest, Some(rest))
    }
}

impl ExactSizeIterator for RoutesIter<'_> {}

#[cfg(test)]
mod tests {
    use super::*;

    const BOTH: [TableLayout; 2] = [TableLayout::Soa, TableLayout::Aos];

    fn e(via: u32, cost: f64, hops: u32) -> RouteEntry {
        RouteEntry {
            via: NodeId::new(via),
            cost,
            hops,
        }
    }

    #[test]
    fn layout_labels_round_trip() {
        assert_eq!(TableLayout::default(), TableLayout::Soa);
        for layout in BOTH {
            assert_eq!(layout.label().parse::<TableLayout>().unwrap(), layout);
            assert_eq!(layout.to_string(), layout.label());
        }
        assert!("rowmajor".parse::<TableLayout>().is_err());
        assert_eq!(RoutingTable::new(2).layout(), TableLayout::Soa);
        assert_eq!(
            RoutingTable::with_layout(2, TableLayout::Aos).layout(),
            TableLayout::Aos
        );
    }

    #[test]
    fn keeps_best_k_sorted() {
        for layout in BOTH {
            let mut t = RoutingTable::with_layout(2, layout);
            let d = NodeId::new(100);
            assert!(t.offer(d, e(1, 3.0, 1)));
            assert!(t.offer(d, e(2, 1.0, 2)));
            assert!(t.offer(d, e(3, 2.0, 2)));
            assert_eq!(t.routes_to(d).len(), 2);
            assert_eq!(t.best(d).unwrap().via, NodeId::new(2));
            assert_eq!(t.alternative(d, 1).unwrap().via, NodeId::new(3));
            assert!(t.alternative(d, 2).is_none());
        }
    }

    #[test]
    fn replaces_route_via_same_neighbor() {
        for layout in BOTH {
            let mut t = RoutingTable::with_layout(2, layout);
            let d = NodeId::new(5);
            assert!(t.offer(d, e(1, 3.0, 2)));
            // Same neighbor, same route: no change.
            assert!(!t.offer(d, e(1, 3.0, 2)));
            // Same neighbor, worse cost: replaced (vector reports current
            // truth).
            assert!(t.offer(d, e(1, 4.0, 2)));
            assert_eq!(t.best(d).unwrap().cost, 4.0);
            // And improvement also replaces.
            assert!(t.offer(d, e(1, 2.0, 2)));
            assert_eq!(t.best(d).unwrap().cost, 2.0);
            assert_eq!(t.routes_to(d).len(), 1);
        }
    }

    #[test]
    fn tie_breaks_on_hops_then_id() {
        for layout in BOTH {
            let mut t = RoutingTable::with_layout(3, layout);
            let d = NodeId::new(7);
            t.offer(d, e(9, 1.0, 3));
            t.offer(d, e(4, 1.0, 2));
            t.offer(d, e(2, 1.0, 3));
            let vias: Vec<u32> = t.routes_to(d).iter().map(|r| r.via.raw()).collect();
            assert_eq!(vias, vec![4, 2, 9]);
        }
    }

    #[test]
    fn best_avoiding_skips_failed_neighbor() {
        for layout in BOTH {
            let mut t = RoutingTable::with_layout(2, layout);
            let d = NodeId::new(7);
            t.offer(d, e(1, 1.0, 1));
            t.offer(d, e(2, 2.0, 2));
            assert_eq!(
                t.best_avoiding(d, NodeId::new(1)).unwrap().via,
                NodeId::new(2)
            );
            assert!(t.best_avoiding(d, NodeId::new(1)).is_some());
            t.purge_via(NodeId::new(2));
            assert!(t.best_avoiding(d, NodeId::new(1)).is_none());
        }
    }

    #[test]
    fn purge_via_drops_empty_destinations() {
        for layout in BOTH {
            let mut t = RoutingTable::with_layout(2, layout);
            t.offer(NodeId::new(7), e(1, 1.0, 1));
            t.offer(NodeId::new(8), e(1, 1.0, 1));
            t.offer(NodeId::new(8), e(2, 2.0, 2));
            assert!(t.purge_via(NodeId::new(1)));
            assert_eq!(t.len(), 1);
            assert!(t.best(NodeId::new(7)).is_none());
            assert_eq!(t.best(NodeId::new(8)).unwrap().via, NodeId::new(2));
            assert!(!t.purge_via(NodeId::new(9)));
        }
    }

    #[test]
    fn accounting_helpers() {
        for layout in BOTH {
            let mut t = RoutingTable::with_layout(2, layout);
            assert!(t.is_empty());
            t.offer(NodeId::new(1), e(2, 1.0, 1));
            t.offer(NodeId::new(3), e(2, 1.0, 1));
            t.offer(NodeId::new(3), e(4, 2.0, 2));
            assert_eq!(t.len(), 2);
            assert_eq!(t.total_entries(), 3);
            let dests: Vec<u32> = t.destinations().map(NodeId::raw).collect();
            assert_eq!(dests, vec![1, 3]);
            t.clear();
            assert!(t.is_empty());
            assert_eq!(t.layout(), layout, "clear keeps the layout");
        }
    }

    #[test]
    fn remove_dest_drops_only_that_destination() {
        for layout in BOTH {
            let mut t = RoutingTable::with_layout(2, layout);
            t.offer(NodeId::new(1), e(2, 1.0, 1));
            t.offer(NodeId::new(3), e(2, 1.0, 1));
            assert!(t.remove_dest(NodeId::new(1)));
            assert!(!t.remove_dest(NodeId::new(1)));
            assert!(t.best(NodeId::new(1)).is_none());
            assert_eq!(t.best(NodeId::new(3)).unwrap().via, NodeId::new(2));
            assert_eq!(t.len(), 1);
        }
    }

    #[test]
    fn remove_dests_compacts_in_one_pass() {
        for layout in BOTH {
            let mut t = RoutingTable::with_layout(2, layout);
            for d in [1u32, 3, 5, 7, 9] {
                t.offer(NodeId::new(d), e(2, f64::from(d), 1));
                t.offer(NodeId::new(d), e(4, f64::from(d) + 1.0, 2));
            }
            // Mixed present/absent targets; the absent ones count for
            // nothing.
            let removed = t.remove_dests(&[NodeId::new(3), NodeId::new(4), NodeId::new(9)]);
            assert_eq!(removed, 2);
            assert_eq!(t.len(), 3);
            for d in [1u32, 5, 7] {
                assert_eq!(t.best(NodeId::new(d)).unwrap().cost, f64::from(d));
                assert_eq!(t.routes_to(NodeId::new(d)).len(), 2);
            }
            assert!(t.best(NodeId::new(3)).is_none());
            assert!(t.best(NodeId::new(9)).is_none());
            // Equivalent to the per-destination removals, bit for bit.
            let mut one_by_one = RoutingTable::with_layout(2, layout);
            for d in [1u32, 5, 7] {
                one_by_one.offer(NodeId::new(d), e(2, f64::from(d), 1));
                one_by_one.offer(NodeId::new(d), e(4, f64::from(d) + 1.0, 2));
            }
            assert_eq!(t, one_by_one);
            assert_eq!(t.remove_dests(&[]), 0);
            assert_eq!(t.len(), 3);
        }
    }

    #[test]
    fn arena_iter_matches_lookups() {
        for layout in BOTH {
            let mut t = RoutingTable::with_layout(2, layout);
            t.offer(NodeId::new(4), e(1, 2.0, 1));
            t.offer(NodeId::new(4), e(3, 1.0, 1));
            t.offer(NodeId::new(9), e(1, 5.0, 2));
            let flat: Vec<(NodeId, usize)> = t.iter().map(|(d, rs)| (d, rs.len())).collect();
            assert_eq!(flat, vec![(NodeId::new(4), 2), (NodeId::new(9), 1)]);
            for (d, rs) in t.iter() {
                assert_eq!(rs, t.routes_to(d));
            }
        }
    }

    #[test]
    fn append_vector_flattens_best_routes() {
        for layout in BOTH {
            let mut t = RoutingTable::with_layout(2, layout);
            t.offer(NodeId::new(4), e(1, 2.0, 1));
            t.offer(NodeId::new(4), e(3, 1.0, 1));
            t.offer(NodeId::new(9), e(1, 5.0, 2));
            let mut flat = vec![(NodeId::new(0), 0.0, 0)]; // appends, not overwrites
            t.append_vector(&mut flat);
            assert_eq!(
                flat[1..],
                [(NodeId::new(4), 1.0, 1), (NodeId::new(9), 5.0, 2)]
            );
        }
    }

    #[test]
    fn equality_ignores_vacant_slots() {
        for layout in BOTH {
            // Build the same logical table along two different histories, so
            // the vacant arena slots hold different garbage.
            let mut a = RoutingTable::with_layout(2, layout);
            a.offer(NodeId::new(7), e(1, 1.0, 1));
            a.offer(NodeId::new(7), e(2, 2.0, 2));
            a.purge_via(NodeId::new(2));
            let mut b = RoutingTable::with_layout(2, layout);
            b.offer(NodeId::new(7), e(1, 1.0, 1));
            assert_eq!(a, b);
        }
    }

    #[test]
    fn equality_is_layout_blind() {
        let mut soa = RoutingTable::new(2);
        let mut aos = RoutingTable::with_layout(2, TableLayout::Aos);
        for t in [&mut soa, &mut aos] {
            t.offer(NodeId::new(7), e(1, 1.0, 1));
            t.offer(NodeId::new(7), e(2, 2.0, 2));
            t.offer(NodeId::new(9), e(2, 4.0, 3));
        }
        assert_eq!(soa, aos);
        aos.offer(NodeId::new(9), e(1, 3.0, 1));
        assert_ne!(soa, aos);
    }

    #[test]
    fn convert_layout_preserves_contents() {
        let mut t = RoutingTable::new(3);
        for d in [2u32, 5, 9] {
            for via in 1..=4u32 {
                t.offer(NodeId::new(d), e(via, f64::from(via * d % 7) + 0.5, via));
            }
        }
        let original = t.clone();
        t.convert_layout(TableLayout::Aos);
        assert_eq!(t.layout(), TableLayout::Aos);
        assert_eq!(t, original);
        t.convert_layout(TableLayout::Aos); // no-op
        assert_eq!(t.layout(), TableLayout::Aos);
        t.convert_layout(TableLayout::Soa);
        assert_eq!(t.layout(), TableLayout::Soa);
        assert_eq!(t, original);
        // The round-tripped table keeps behaving identically.
        let mut twin = original.clone();
        assert_eq!(
            t.offer(NodeId::new(5), e(9, 0.1, 1)),
            twin.offer(NodeId::new(5), e(9, 0.1, 1))
        );
        assert_eq!(t, twin);
    }

    #[test]
    fn worse_offer_outside_top_k_is_not_a_change() {
        for layout in BOTH {
            let mut t = RoutingTable::with_layout(2, layout);
            let d = NodeId::new(3);
            assert!(t.offer(d, e(1, 1.0, 1)));
            assert!(t.offer(d, e(2, 2.0, 1)));
            assert!(!t.offer(d, e(5, 9.0, 1)), "does not make the top 2");
            assert_eq!(t.routes_to(d).len(), 2);
            // But an improving third neighbor displaces the second.
            assert!(t.offer(d, e(5, 1.5, 1)));
            let vias: Vec<u32> = t.routes_to(d).iter().map(|r| r.via.raw()).collect();
            assert_eq!(vias, vec![1, 5]);
        }
    }

    #[test]
    #[should_panic(expected = "k must be at least 1")]
    fn zero_k_panics() {
        let _ = RoutingTable::new(0);
    }

    #[test]
    fn offer_ascending_replays_identically_to_offer() {
        // Three "vectors" (ascending dests each), with replacements,
        // displacements and new destinations mixed in — the cursor path
        // must land on exactly the table the plain offers build.
        let vectors: [&[(u32, RouteEntry)]; 3] = [
            &[(2, e(1, 3.0, 2)), (5, e(1, 1.0, 1)), (9, e(1, 2.0, 2))],
            &[(2, e(2, 2.5, 2)), (3, e(2, 1.0, 1)), (9, e(2, 1.5, 1))],
            &[(2, e(1, 2.0, 2)), (5, e(3, 0.5, 1)), (7, e(3, 4.0, 3))],
        ];
        for layout in BOTH {
            let mut plain = RoutingTable::with_layout(2, layout);
            let mut cursored = RoutingTable::with_layout(2, layout);
            for vector in vectors {
                let mut cursor = 0usize;
                for &(d, entry) in vector {
                    let a = plain.offer(NodeId::new(d), entry);
                    let b = cursored.offer_ascending(NodeId::new(d), entry, &mut cursor);
                    assert_eq!(a, b, "changed-flag must agree at dest {d}");
                }
            }
            assert_eq!(plain, cursored);
        }
    }

    #[test]
    fn layouts_agree_on_epsilon_tie_windows() {
        // Costs spaced ~COST_EPS apart exercise the non-transitive epsilon
        // comparator, where the replace arm's full-count rank and the
        // insert arm's early-exit rank can legitimately differ — the SoA
        // kernel must reproduce both arms exactly.
        let base = 1.0f64;
        let offers: Vec<(u32, RouteEntry)> = (0..6u32)
            .flat_map(|round| {
                (1..=4u32).map(move |via| {
                    (
                        7u32,
                        e(
                            via,
                            base + f64::from((round * 4 + via) % 5) * (COST_EPS * 0.6),
                            1 + (via + round) % 3,
                        ),
                    )
                })
            })
            .collect();
        let mut soa = RoutingTable::new(2);
        let mut aos = RoutingTable::with_layout(2, TableLayout::Aos);
        for &(d, entry) in &offers {
            let a = soa.offer(NodeId::new(d), entry);
            let b = aos.offer(NodeId::new(d), entry);
            assert_eq!(a, b, "changed flags diverged on {entry:?}");
            assert_eq!(soa, aos, "tables diverged after {entry:?}");
        }
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn offer_ascending_rejects_unsorted_destinations() {
        let mut t = RoutingTable::new(2);
        let mut cursor = 0usize;
        t.offer_ascending(NodeId::new(9), e(1, 1.0, 1), &mut cursor);
        t.offer_ascending(NodeId::new(3), e(1, 1.0, 1), &mut cursor);
    }
}
