//! The distributed Bellman-Ford exchange.
//!
//! DBF runs in synchronous rounds: every node whose table changed since its
//! last broadcast sends its distance vector to its zone neighbors (at the
//! zone/ADV power level); receivers relax their tables; the exchange
//! quiesces when a round produces no changes. The paper quotes the classic
//! `O(n·e)` convergence bound and argues zone sizes (5–50 nodes) keep it
//! affordable — our stats let experiments verify that claim directly.
//!
//! Two execution modes share the table state:
//!
//! * **Full rebuild** ([`DbfEngine::reset`] +
//!   [`DbfEngine::run_to_convergence_masked`]) — the paper's "re-execution
//!   of the DBF": every table is cleared, direct routes are reinstalled, and
//!   every node broadcasts its whole vector in round one. Kept as the
//!   reference oracle the incremental mode is property-tested against.
//! * **Incremental delta rebuild** ([`DbfEngine::update_topology`] /
//!   [`DbfEngine::invalidate_zone`]) — real distance-vector deployments
//!   propagate triggered *deltas*, not full vectors. The engine tracks a
//!   per-node *dirty set* of destinations whose advertised route changed
//!   since the node's last broadcast; a topology event invalidates only the
//!   destinations it can actually affect, reseeds their direct routes, and
//!   re-converges with vectors that carry only the changed entries.
//!
//! Both modes additionally come in two executions sharing one semantics:
//! the **sequential** round loops (the full rebuild is the root oracle of
//! the equivalence chain, the sequential delta loop the mid-level oracle)
//! and the **zone-sharded** runners ([`DbfEngine::with_shards`] for the
//! delta rounds, [`DbfEngine::rebuild_sharded`] for the full rebuild),
//! which snapshot each round's broadcasts by contiguous **sender** ranges,
//! scatter them into per-receiver CSR inboxes, partition the receivers
//! into contiguous id ranges of balanced relaxation load, and run the
//! ranges on the engine's persistent [`WorkerPool`] (parked between
//! rounds, woken by a round-barrier handoff; light rounds run inline
//! without ever starting it). Receivers are the unit of ownership: a
//! node's table is only ever touched by the shard that owns its id, and
//! each receiver replays its inbox in exactly the broadcast order the
//! sequential loop uses, so the merge is a no-op and the tables (and even
//! the [`DbfStats`]) are bit-identical for *every* shard count — the
//! property the `sharded` proptest suite pins against both oracles along
//! the chain sharded-full → sequential-full → sequential-delta →
//! sharded-delta. Thread count can therefore never change routing
//! results, only wall-clock time.
//!
//! The incremental scheme leans on a structural fact of zone routing: a
//! node only maintains destinations inside its own zone, and every relay on
//! a path toward destination `d` must itself maintain `d` — so every route
//! to `d` stays within `d`'s direct zone neighborhood. A node event (move,
//! failure, repair) can therefore only disturb routes to the destinations
//! adjacent to it (under the old or new zone table), and those routes only
//! live at those destinations' direct neighbors. Wiping and reseeding that
//! bounded set, then re-running the exchange restricted to it, provably
//! reaches the same fixpoint as a from-scratch rebuild — bit-for-bit, which
//! the `incremental` proptest suite asserts.

use std::collections::BTreeSet;
use std::sync::Arc;

use spms_net::{NodeId, ZoneDelta, ZoneTable};

/// Minimum total relaxation load (vector entries addressed this round)
/// before a sharded round is handed to the persistent worker pool;
/// lighter rounds run inline. A delta convergence tapers — the last few
/// rounds carry a handful of entries — and even the pool's handoff (one
/// mutex/condvar round trip, single-digit microseconds, vs. the tens of
/// microseconds per thread the old per-round `thread::scope` spawns
/// cost) is not worth paying to split a few hundred nanoseconds of
/// relaxation. At ≈ 0.25 µs of relaxation per entry, 256 entries split
/// two ways save ≈ 30 µs against ≈ 5 µs of handoff — comfortably past
/// crossover — while the tail rounds of a convergence stay inline and
/// overhead-free. Purely a scheduling choice: the executed relaxation is
/// identical either way.
const SHARD_MIN_LOAD: u64 = 256;

use crate::pool::WorkerPool;
use crate::{DbfWireFormat, RouteEntry, RoutingTable, TableLayout};

/// A node's broadcast distance vector: its best known cost and hop count to
/// each destination it maintains (all of them for a full-rebuild round, only
/// the changed ones for a delta round).
#[derive(Clone, Debug, PartialEq)]
pub struct DbfVector {
    /// The sender.
    pub from: NodeId,
    /// `(destination, best cost, best hops)` triples in destination order.
    pub entries: Vec<(NodeId, f64, u32)>,
}

/// Cost accounting for one DBF execution.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct DbfStats {
    /// Synchronous rounds until quiescence (including the final silent one).
    pub rounds: u32,
    /// Vector broadcasts sent.
    pub messages: u64,
    /// Total vector entries across all broadcasts.
    pub entries_sent: u64,
    /// Total bytes on air, per the configured wire format.
    pub bytes_total: u64,
    /// Bytes broadcast by each node (for per-node energy charging).
    pub per_node_bytes: Vec<u64>,
}

/// Reusable buffers for the synchronous exchange, hoisted out of the round
/// loop so steady-state re-convergence allocates nothing.
#[derive(Clone, Debug, Default)]
struct Scratch {
    /// Broadcast flags for the current round.
    pending: Vec<bool>,
    /// Broadcast flags accumulated for the next round.
    next_pending: Vec<bool>,
    /// Snapshot arena: every entry broadcast this round, flattened.
    snap_entries: Vec<(NodeId, f64, u32)>,
    /// `(sender, start, end)` ranges into `snap_entries`.
    snap_from: Vec<(NodeId, u32, u32)>,
    /// All-alive mask for [`DbfEngine::run_to_convergence`].
    all_alive: Vec<bool>,
    /// Membership bitmap for the affected destination set.
    affected: Vec<bool>,
    /// The affected destinations, in id order.
    dests: Vec<NodeId>,
    /// Dense index of each affected destination (`u32::MAX` elsewhere).
    dest_index: Vec<u32>,
    /// `member[a * dests.len() + di]` — does node `a` maintain affected
    /// destination `di` under the new zones? Precomputing the zone scoping
    /// once per event turns the per-entry membership check on the delta
    /// hot path into one array load instead of a binary search.
    member: Vec<bool>,
    /// Nodes with at least one `member` bit — the maintainers whose tables
    /// the invalidation wipe must visit.
    touched: Vec<bool>,
    /// Per-maintainer wipe list, reused across maintainers.
    wipe: Vec<NodeId>,
    /// Sharded rounds: CSR prefix (`n + 1` entries) of each receiver's
    /// inbox for the current round.
    inbox_start: Vec<u32>,
    /// Sharded rounds: `snap_from` index of each inbox vector, grouped by
    /// receiver, in broadcast (sender-id) order within each group.
    inbox_msg: Vec<u32>,
    /// Sharded rounds: the receiver's link weight to each inbox sender.
    inbox_weight: Vec<f64>,
    /// Sharded rounds: per-receiver relaxation load (entries addressed to
    /// it this round) — the shard planner's balancing weight.
    load: Vec<u64>,
    /// Sharded rounds: scatter cursors while filling the inbox.
    fill: Vec<u32>,
    /// Sharded rounds: shard boundary node ids (`bounds[i]..bounds[i+1]`).
    bounds: Vec<usize>,
    /// Sender-sharded snapshots: per-sender snapshot weight (entries the
    /// sender would flatten this round) — the sender planner's balancing
    /// weight.
    snd_load: Vec<u64>,
    /// Sender-sharded snapshots: sender shard boundary node ids.
    snd_bounds: Vec<usize>,
    /// Sender-sharded snapshots: per-shard entry buffers, concatenated in
    /// shard (= sender id) order after the scope joins.
    shard_entries: Vec<Vec<(NodeId, f64, u32)>>,
    /// Sender-sharded snapshots: per-shard `(sender, start, end)` buffers
    /// (ranges relative to the shard's own entry buffer until
    /// concatenation rebases them).
    shard_from: Vec<Vec<(NodeId, u32, u32)>>,
    /// Fused pooled rounds: per-range "this range still has updates to
    /// send" flags — the parallelized form of the round loop's global
    /// quiescence scan.
    range_had: Vec<bool>,
    /// Pooled scatter: each sender's `snap_from` index this round
    /// (`u32::MAX` for nodes that did not broadcast), so receiver-driven
    /// tasks can look their zone neighbors up in O(1).
    msg_of: Vec<u32>,
}

/// The distributed Bellman-Ford engine: one routing table per node.
///
/// # Example
///
/// ```
/// use spms_net::{placement, NodeId, ZoneTable};
/// use spms_phy::RadioProfile;
/// use spms_routing::DbfEngine;
///
/// let topo = placement::grid(3, 3, 5.0).unwrap();
/// let zones = ZoneTable::build(&topo, &RadioProfile::mica2(), 20.0);
/// let mut dbf = DbfEngine::new(&zones, 2);
/// dbf.run_to_convergence(&zones);
/// // The corner reaches the opposite corner through an adjacent node.
/// let best = dbf.table(NodeId::new(0)).best(NodeId::new(8)).unwrap();
/// assert!(best.hops >= 2);
/// ```
#[derive(Debug)]
pub struct DbfEngine {
    tables: Vec<RoutingTable>,
    /// Per-node destinations whose table entries changed since the node's
    /// last broadcast — the triggered-update ("delta") state. Empty at every
    /// convergence point.
    dirty: Vec<BTreeSet<NodeId>>,
    k: usize,
    wire: DbfWireFormat,
    /// `None` runs the delta rounds sequentially (the mid-level oracle);
    /// `Some(s)` runs them through the zone-shard planner with `s`
    /// receiver partitions. Bit-identical either way.
    shards: Option<usize>,
    /// The persistent worker pool (`shards - 1` parked threads; the
    /// dispatching thread is the remaining shard), spun up lazily the
    /// first time a round is heavy enough to split and reused for every
    /// round, epoch, and rebuild after that. Dropped with the engine,
    /// which joins the workers.
    pool: Option<Arc<WorkerPool>>,
    scratch: Scratch,
}

impl Clone for DbfEngine {
    /// Clones the routing state; the clone gets no pool and spins up its
    /// own on first use. Worker threads are wall-clock machinery, not
    /// routing state — sharing them would serialize two engines against
    /// each other, and cloning them would leak idle threads for clones
    /// that never re-converge.
    fn clone(&self) -> Self {
        DbfEngine {
            tables: self.tables.clone(),
            dirty: self.dirty.clone(),
            k: self.k,
            wire: self.wire,
            shards: self.shards,
            pool: None,
            scratch: self.scratch.clone(),
        }
    }
}

impl DbfEngine {
    /// Creates an engine with direct (one-hop) routes installed for every
    /// zone link, keeping `k` alternatives per destination.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    #[must_use]
    pub fn new(zones: &ZoneTable, k: usize) -> Self {
        let mut engine = DbfEngine {
            tables: (0..zones.len()).map(|_| RoutingTable::new(k)).collect(),
            dirty: vec![BTreeSet::new(); zones.len()],
            k,
            wire: DbfWireFormat::default(),
            shards: None,
            pool: None,
            scratch: Scratch::default(),
        };
        engine.reset(zones, &vec![true; zones.len()]);
        engine
    }

    /// Overrides the wire format used for byte accounting.
    #[must_use]
    pub fn with_wire_format(mut self, wire: DbfWireFormat) -> Self {
        self.wire = wire;
        self
    }

    /// Routes the delta re-convergence through the zone-shard planner with
    /// `shards` receiver partitions (shards beyond the round's active
    /// receivers idle). One partition dispatches straight to the
    /// sequential round loop — a single-core host pays zero planning
    /// overhead — while [`DbfEngine::shards`] still reports the
    /// configuration, so accounting that names the execution mode stays
    /// byte-comparable with a parallel host. Tables and stats are
    /// bit-identical to the sequential path for every shard count
    /// (property-tested).
    ///
    /// # Panics
    ///
    /// Panics if `shards == 0`.
    #[must_use]
    pub fn with_shards(mut self, shards: usize) -> Self {
        assert!(shards > 0, "shards must be at least 1");
        self.shards = Some(shards);
        self
    }

    /// The configured shard count (`None` = sequential delta rounds).
    #[must_use]
    pub fn shards(&self) -> Option<usize> {
        self.shards
    }

    /// Whether the persistent worker pool has been spun up. Observability
    /// for the inline-dispatch taper: an engine whose every round stays
    /// under the pool's load threshold must never start worker threads
    /// (pinned by tests), so light workloads on a sharded engine pay
    /// exactly what a sequential engine pays.
    #[must_use]
    pub fn pool_started(&self) -> bool {
        self.pool.is_some()
    }

    /// The persistent pool, spun up on first use with `shards - 1` worker
    /// threads (the dispatching thread acts as the final shard). Returns
    /// a clone of the handle so callers can dispatch while `self`'s
    /// fields are mutably borrowed; the `Arc` is an ownership detail, not
    /// a sharing mechanism — each engine has its own pool.
    fn pool(&mut self, shards: usize) -> Arc<WorkerPool> {
        debug_assert!(shards >= 2, "pooled dispatch needs at least two shards");
        match &self.pool {
            Some(pool) if pool.workers() == shards - 1 => Arc::clone(pool),
            _ => {
                let pool = Arc::new(WorkerPool::new(shards - 1));
                self.pool = Some(Arc::clone(&pool));
                pool
            }
        }
    }

    /// Stores every routing table in `layout` ([`TableLayout::Soa`] planes
    /// by default). The AoS layout is the differential oracle: the layout
    /// proptest suites replay identical exchanges through both arenas and
    /// assert bit-identical tables and [`DbfStats`]. Like the shard count,
    /// the layout can never change routing results, only wall-clock time.
    #[must_use]
    pub fn with_table_layout(mut self, layout: TableLayout) -> Self {
        for table in &mut self.tables {
            table.convert_layout(layout);
        }
        self
    }

    /// The arena layout the engine's tables are stored in.
    #[must_use]
    pub fn table_layout(&self) -> TableLayout {
        self.tables
            .first()
            .map_or_else(TableLayout::default, RoutingTable::layout)
    }

    /// The number of route alternatives kept per destination.
    #[must_use]
    pub fn k(&self) -> usize {
        self.k
    }

    /// Reinstalls direct routes from scratch, skipping dead nodes — the
    /// paper's "re-execution of the DBF" after mobility or failure. This is
    /// the full-rebuild reference path; [`DbfEngine::update_topology`] is
    /// the incremental equivalent.
    pub fn reset(&mut self, zones: &ZoneTable, alive: &[bool]) {
        assert_eq!(alive.len(), zones.len(), "alive mask length mismatch");
        for table in &mut self.tables {
            table.clear();
        }
        for set in &mut self.dirty {
            set.clear();
        }
        for a in 0..zones.len() {
            if !alive[a] {
                continue;
            }
            let node = NodeId::new(a as u32);
            // Zone links arrive in neighbor-id order, so the direct seeds
            // replay through one ascending cursor per table.
            let mut cursor = 0usize;
            for link in zones.links(node) {
                if !alive[link.neighbor.index()] {
                    continue;
                }
                self.tables[a].offer_ascending(
                    link.neighbor,
                    RouteEntry {
                        via: link.neighbor,
                        cost: link.weight,
                        hops: 1,
                    },
                    &mut cursor,
                );
            }
        }
    }

    /// The full rebuild through the shard planner: [`DbfEngine::reset`]
    /// plus synchronous full-vector rounds executed across the
    /// configured shard count on the engine's persistent worker pool —
    /// the parallel equivalent of `reset` +
    /// [`DbfEngine::run_to_convergence_masked`], which stays verbatim as
    /// the root oracle this path is property-tested against (tables
    /// **and** stats bit-identical for every shard count).
    ///
    /// Each round scatters the previous round's broadcasts into
    /// per-receiver CSR inboxes exactly like the sharded delta rounds,
    /// then each receiver range relaxes its inboxes and immediately
    /// flattens its own changed tables into shard-local buffers for the
    /// next round's snapshot (concatenated in id order — byte-identical
    /// to the sequential sender-order arena). Light rounds run inline —
    /// a single-core host (or an unsharded engine) dispatches straight
    /// to the sequential loop and never starts the pool.
    ///
    /// # Panics
    ///
    /// Panics if the alive mask length does not match, or if the exchange
    /// fails to converge within the same bound as the sequential rebuild.
    pub fn rebuild_sharded(&mut self, zones: &ZoneTable, alive: &[bool]) -> DbfStats {
        self.reset(zones, alive);
        match self.shards {
            // One partition replays the sequential order by construction:
            // dispatch to the root oracle loop itself.
            None | Some(1) => self.run_to_convergence_masked(zones, alive),
            Some(shards) => {
                let mut stats = DbfStats {
                    per_node_bytes: vec![0; zones.len()],
                    ..DbfStats::default()
                };
                self.run_full_rounds_sharded(zones, alive, shards, &mut stats);
                stats
            }
        }
    }

    /// The routing table of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    #[must_use]
    pub fn table(&self, node: NodeId) -> &RoutingTable {
        &self.tables[node.index()]
    }

    /// Consumes the engine, yielding all tables indexed by node — a final
    /// snapshot for analysis. This ends the engine's life on purpose: the
    /// tables leave the incremental machinery (dirty sets, scratch) behind,
    /// so they must not be fed back into another exchange.
    #[must_use]
    pub fn into_tables(self) -> Vec<RoutingTable> {
        self.tables
    }

    /// Builds the full distance vector `node` would broadcast now.
    #[must_use]
    pub fn vector_of(&self, node: NodeId) -> DbfVector {
        let mut entries = Vec::new();
        self.tables[node.index()].append_vector(&mut entries);
        DbfVector {
            from: node,
            entries,
        }
    }

    /// Builds the *delta* vector `node` would broadcast now: only the
    /// destinations whose entries changed since the node's last broadcast.
    /// Destinations that were invalidated and have no route again yet are
    /// silently omitted (their maintainers were invalidated by the same
    /// event, so there is no stale state to withdraw).
    #[must_use]
    pub fn delta_vector_of(&self, node: NodeId) -> DbfVector {
        let table = &self.tables[node.index()];
        let entries = self.dirty[node.index()]
            .iter()
            .filter_map(|&d| table.best(d).map(|e| (d, e.cost, e.hops)))
            .collect();
        DbfVector {
            from: node,
            entries,
        }
    }

    /// Applies a received vector at `at`: relaxes `at`'s table with routes
    /// via the sender and records any changed destination in `at`'s dirty
    /// set (the trigger state for its next delta broadcast). Returns `true`
    /// if the table changed.
    pub fn receive(&mut self, at: NodeId, vector: &DbfVector, zones: &ZoneTable) -> bool {
        let Some(link) = zones.link_to(at, vector.from) else {
            return false; // sender out of zone (stale broadcast after a move)
        };
        self.apply_entries(at, vector.from, link.weight, &vector.entries, zones)
    }

    /// Relaxation inner loop shared by both execution modes. `w` is the
    /// receiver's link weight to the sender (symmetric for a shared radio
    /// profile, so the broadcast loop can pass the sender-side weight).
    fn apply_entries(
        &mut self,
        at: NodeId,
        from: NodeId,
        w: f64,
        entries: &[(NodeId, f64, u32)],
        zones: &ZoneTable,
    ) -> bool {
        let table = &mut self.tables[at.index()];
        let dirty = &mut self.dirty[at.index()];
        let mut changed = false;
        for &(dest, cost, hops) in entries {
            if dest == at {
                continue;
            }
            // Zone scoping: `at` only maintains destinations in its own zone.
            if !zones.in_zone(at, dest) {
                continue;
            }
            if table.offer(
                dest,
                RouteEntry {
                    via: from,
                    cost: w + cost,
                    hops: hops + 1,
                },
            ) {
                dirty.insert(dest);
                changed = true;
            }
        }
        changed
    }

    /// Runs synchronous rounds until quiescence with every node alive.
    pub fn run_to_convergence(&mut self, zones: &ZoneTable) -> DbfStats {
        let mut all_alive = std::mem::take(&mut self.scratch.all_alive);
        all_alive.clear();
        all_alive.resize(zones.len(), true);
        let stats = self.run_to_convergence_masked(zones, &all_alive);
        self.scratch.all_alive = all_alive;
        stats
    }

    /// Runs synchronous rounds until quiescence, excluding dead nodes — the
    /// full-rebuild reference path.
    ///
    /// Triggered-update semantics: in round 1 every (alive) node broadcasts;
    /// thereafter only nodes whose table changed in the previous round do.
    /// Vectors within a round are snapshotted first, so the exchange is
    /// order-independent and deterministic.
    ///
    /// # Panics
    ///
    /// Panics if the alive mask length does not match, or if the exchange
    /// fails to converge within a generous bound (which would indicate a
    /// negative-cost or bookkeeping bug, as positive-weight DBF always
    /// converges).
    pub fn run_to_convergence_masked(&mut self, zones: &ZoneTable, alive: &[bool]) -> DbfStats {
        assert_eq!(alive.len(), zones.len(), "alive mask length mismatch");
        let n = zones.len();
        let mut stats = DbfStats {
            per_node_bytes: vec![0; n],
            ..DbfStats::default()
        };
        let mut pending = std::mem::take(&mut self.scratch.pending);
        pending.clear();
        pending.extend_from_slice(alive);
        // Positive weights: path costs strictly increase with hops, so
        // convergence takes at most diameter+2 rounds; n+4 is a safe bound.
        let max_rounds = (n as u32).max(8) + 4;

        for _round in 0..max_rounds {
            stats.rounds += 1;
            if pending.iter().all(|&p| !p) {
                self.scratch.pending = pending;
                // A full convergence leaves no triggered updates behind.
                for set in &mut self.dirty {
                    set.clear();
                }
                return stats; // quiescent: nobody has updates to send
            }
            // Snapshot the vectors of every broadcasting node into the flat
            // arena (reused across rounds — no per-vector allocations).
            let mut snap_entries = std::mem::take(&mut self.scratch.snap_entries);
            let mut snap_from = std::mem::take(&mut self.scratch.snap_from);
            snap_entries.clear();
            snap_from.clear();
            for i in 0..n {
                if !(pending[i] && alive[i]) {
                    continue;
                }
                let start = snap_entries.len() as u32;
                self.tables[i].append_vector(&mut snap_entries);
                snap_from.push((NodeId::new(i as u32), start, snap_entries.len() as u32));
            }
            let mut next_pending = std::mem::take(&mut self.scratch.next_pending);
            next_pending.clear();
            next_pending.resize(n, false);
            for &(from, start, end) in &snap_from {
                let entries = &snap_entries[start as usize..end as usize];
                stats.messages += 1;
                stats.entries_sent += entries.len() as u64;
                let bytes = u64::from(self.wire.message_bytes(entries.len()));
                stats.bytes_total += bytes;
                stats.per_node_bytes[from.index()] += bytes;
                for link in zones.links(from) {
                    let to = link.neighbor;
                    if !alive[to.index()] {
                        continue;
                    }
                    if self.apply_entries(to, from, link.weight, entries, zones) {
                        next_pending[to.index()] = true;
                    }
                }
            }
            self.scratch.snap_entries = snap_entries;
            self.scratch.snap_from = snap_from;
            // Retire the drained flags buffer for reuse next round.
            self.scratch.next_pending = std::mem::replace(&mut pending, next_pending);
        }
        panic!("DBF failed to converge within {max_rounds} rounds");
    }

    /// Incrementally re-converges after a node liveness event (failure or
    /// repair) without touching zones the event cannot reach. `changed`
    /// names the nodes whose liveness flipped; `alive` is the new mask.
    /// Equivalent to [`DbfEngine::update_topology`] with identical old and
    /// new zone tables.
    pub fn invalidate_zone(
        &mut self,
        zones: &ZoneTable,
        changed: &[NodeId],
        alive: &[bool],
    ) -> DbfStats {
        self.update_topology(zones, zones, changed, alive)
    }

    /// Incrementally re-converges after a topology change: `changed` names
    /// the nodes that moved (or whose liveness flipped), `old_zones` /
    /// `new_zones` are the zone tables before and after the event, and
    /// `alive` is the current liveness mask.
    ///
    /// Only the destinations a changed node is adjacent to (under either
    /// zone table) can have gained, lost, or re-priced routes — every route
    /// to a destination runs through that destination's direct neighbors.
    /// Those destinations are invalidated at their maintainers, direct
    /// routes are reseeded, and the delta exchange re-converges just that
    /// slice of the network. Tables end bit-identical to a from-scratch
    /// [`DbfEngine::reset`] + [`DbfEngine::run_to_convergence_masked`]
    /// rebuild (property-tested), at a fraction of the cost.
    ///
    /// # Panics
    ///
    /// Panics if the zone tables or the alive mask disagree on the node
    /// count, or if the exchange fails to converge within the same bound as
    /// the full rebuild.
    pub fn update_topology(
        &mut self,
        old_zones: &ZoneTable,
        new_zones: &ZoneTable,
        changed: &[NodeId],
        alive: &[bool],
    ) -> DbfStats {
        let n = new_zones.len();
        assert_eq!(old_zones.len(), n, "zone table length mismatch");
        assert_eq!(alive.len(), n, "alive mask length mismatch");
        let mut stats = DbfStats {
            per_node_bytes: vec![0; n],
            ..DbfStats::default()
        };

        // Affected destinations: each changed node and everything adjacent
        // to it before or after the event.
        let mut affected = std::mem::take(&mut self.scratch.affected);
        affected.clear();
        affected.resize(n, false);
        for &c in changed {
            affected[c.index()] = true;
            for link in old_zones.links(c) {
                affected[link.neighbor.index()] = true;
            }
            for link in new_zones.links(c) {
                affected[link.neighbor.index()] = true;
            }
        }
        // Pending triggered updates (e.g. manual `receive` calls since the
        // last convergence) are flushed by folding their destinations into
        // the invalidated set: the wipe-and-reconverge re-derives those
        // routes from the actual topology, and the delta rounds can assume
        // every dirty destination has a dense index.
        for set in &self.dirty {
            for &d in set {
                affected[d.index()] = true;
            }
        }
        let mut dests = std::mem::take(&mut self.scratch.dests);
        dests.clear();
        dests.extend(
            (0..n)
                .filter(|&i| affected[i])
                .map(|i| NodeId::new(i as u32)),
        );

        // A changed node that is down holds no routes at all.
        for &c in changed {
            if !alive[c.index()] {
                self.tables[c.index()].clear();
                self.dirty[c.index()].clear();
            }
        }

        // Old maintainers may hold routes the new adjacency no longer
        // justifies: wipe the affected destinations at their *old* zone
        // neighbors first; the shared tail handles the new-adjacency wipe
        // and reseed.
        for &d in &dests {
            for link in old_zones.links(d) {
                let a = link.neighbor.index();
                if alive[a] {
                    self.tables[a].remove_dest(d);
                }
            }
        }
        self.scratch.affected = affected;
        self.scratch.dests = dests;

        self.reconverge_affected(new_zones, alive, &mut stats);
        stats
    }

    /// Incrementally re-converges after an **in-place** zone patch
    /// ([`ZoneTable::apply_moves`]): the old zone table no longer exists,
    /// so the pre-move adjacency needed to retire stale routes comes from
    /// the [`ZoneDelta`] instead. `also_changed` names nodes whose
    /// liveness flipped since the last convergence without a zone change
    /// (their zones are invalidated under the current — unchanged — table,
    /// as [`DbfEngine::invalidate_zone`] would); `alive` is the current
    /// mask. Tables end bit-identical to a from-scratch rebuild under the
    /// patched zones (property-tested alongside
    /// [`DbfEngine::update_topology`]).
    ///
    /// # Panics
    ///
    /// Panics if the zone table and alive mask disagree on the node count,
    /// or if the exchange fails to converge within the same bound as the
    /// full rebuild.
    pub fn apply_zone_delta(
        &mut self,
        zones: &ZoneTable,
        delta: &ZoneDelta,
        also_changed: &[NodeId],
        alive: &[bool],
    ) -> DbfStats {
        let n = zones.len();
        assert_eq!(alive.len(), n, "alive mask length mismatch");
        let mut stats = DbfStats {
            per_node_bytes: vec![0; n],
            ..DbfStats::default()
        };

        // Affected destinations: the patch already rebuilt the rows of
        // every moved node and everyone inside its old or new zone —
        // `changed_nodes` is exactly that set. Liveness flips add their
        // own (unchanged) zones, and pending triggered updates are flushed
        // as in `update_topology`.
        let mut affected = std::mem::take(&mut self.scratch.affected);
        affected.clear();
        affected.resize(n, false);
        for &c in &delta.changed_nodes {
            affected[c.index()] = true;
        }
        for &c in also_changed {
            affected[c.index()] = true;
            for link in zones.links(c) {
                affected[link.neighbor.index()] = true;
            }
        }
        for set in &self.dirty {
            for &d in set {
                affected[d.index()] = true;
            }
        }
        let mut dests = std::mem::take(&mut self.scratch.dests);
        dests.clear();
        dests.extend(
            (0..n)
                .filter(|&i| affected[i])
                .map(|i| NodeId::new(i as u32)),
        );

        // A changed node that is down holds no routes at all.
        for c in delta
            .moves
            .iter()
            .map(|mv| mv.node)
            .chain(also_changed.iter().copied())
        {
            if !alive[c.index()] {
                self.tables[c.index()].clear();
                self.dirty[c.index()].clear();
            }
        }

        // The old-adjacency wipe `update_topology` reads from `old_zones`:
        // for non-moved pairs the old and new maintainer sets coincide
        // (their mutual distances did not change), so the only stale state
        // the new table cannot name is between a moved node and its
        // pre-move neighbors — exactly what the delta recorded.
        for mv in &delta.moves {
            let m = mv.node.index();
            for &a in &mv.old_neighbors {
                if alive[a.index()] {
                    self.tables[a.index()].remove_dest(mv.node);
                }
                if alive[m] {
                    self.tables[m].remove_dest(a);
                }
            }
        }
        self.scratch.affected = affected;
        self.scratch.dests = dests;

        self.reconverge_affected(zones, alive, &mut stats);
        stats
    }

    /// Shared tail of the incremental paths. Expects the affected
    /// destination set in `scratch.affected`/`scratch.dests` (and any
    /// old-adjacency wipes already done): wipes every maintainer's routes
    /// to the affected destinations under the **new** adjacency, reseeds
    /// the surviving direct routes, precomputes the delta-round zone
    /// scoping, and re-converges — sequentially or through the zone-shard
    /// planner, per [`DbfEngine::with_shards`].
    fn reconverge_affected(&mut self, zones: &ZoneTable, alive: &[bool], stats: &mut DbfStats) {
        let n = zones.len();
        let dests = std::mem::take(&mut self.scratch.dests);
        // Precompute the zone scoping first: every entry the delta exchange
        // carries targets an affected destination, so one dense
        // (node × affected-dest) bitmap replaces the per-entry `in_zone`
        // lookup; self-links are absent by construction, which also
        // subsumes the `dest == at` skip. The same bitmap doubles as the
        // wipe plan — maintainers of `d` are exactly `d`'s zone neighbors.
        let nd = dests.len();
        let mut dest_index = std::mem::take(&mut self.scratch.dest_index);
        dest_index.clear();
        dest_index.resize(n, u32::MAX);
        let mut member = std::mem::take(&mut self.scratch.member);
        member.clear();
        member.resize(n * nd, false);
        let mut touched = std::mem::take(&mut self.scratch.touched);
        touched.clear();
        touched.resize(n, false);
        for (di, &d) in dests.iter().enumerate() {
            dest_index[d.index()] = di as u32;
            for link in zones.links(d) {
                member[link.neighbor.index() * nd + di] = true;
                touched[link.neighbor.index()] = true;
            }
        }
        // Batched invalidation: each touched maintainer drops its whole
        // affected-destination slice in one arena compaction instead of one
        // shift per destination — the wipe lists grow with the batching
        // window, the compaction cost does not.
        let mut wipe = std::mem::take(&mut self.scratch.wipe);
        for (a, &hit) in touched.iter().enumerate() {
            if !hit || !alive[a] {
                continue;
            }
            wipe.clear();
            let base = a * nd;
            wipe.extend(
                dests
                    .iter()
                    .enumerate()
                    .filter(|&(di, _)| member[base + di])
                    .map(|(_, &d)| d),
            );
            self.tables[a].remove_dests(&wipe);
        }
        self.scratch.wipe = wipe;
        self.scratch.touched = touched;
        // Reseed the surviving direct routes. Link weights are symmetric
        // (shared radio profile), so the d→a weight doubles as a's direct
        // cost to d.
        for &d in &dests {
            if !alive[d.index()] {
                continue; // nobody routes to a dead destination
            }
            for link in zones.links(d) {
                let a = link.neighbor.index();
                if !alive[a] {
                    continue;
                }
                if self.tables[a].offer(
                    d,
                    RouteEntry {
                        via: d,
                        cost: link.weight,
                        hops: 1,
                    },
                ) {
                    self.dirty[a].insert(d);
                }
            }
        }
        self.scratch.dests = dests;
        self.scratch.dest_index = dest_index;
        self.scratch.member = member;

        match self.shards {
            // One partition would replay the sequential order anyway: skip
            // the planner (inbox scatter, bounds) entirely. `shards()`
            // still reports the configuration for mode accounting.
            None | Some(1) => self.run_delta_rounds(zones, alive, stats),
            Some(shards) => self.run_delta_rounds_sharded(zones, alive, shards, stats),
        }
    }

    /// Drains every alive node's dirty set into the snapshot arena: the
    /// round opening shared verbatim by the sequential and sharded delta
    /// loops, so the two executions can never drift apart on what gets
    /// broadcast. Dead broadcasters clear silently; an all-withdrawn delta
    /// has nothing to say (its neighbors were invalidated by the same
    /// event, so silence is correct).
    fn snapshot_delta_round(
        &mut self,
        alive: &[bool],
        snap_entries: &mut Vec<(NodeId, f64, u32)>,
        snap_from: &mut Vec<(NodeId, u32, u32)>,
    ) {
        snap_entries.clear();
        snap_from.clear();
        for (i, &up) in alive.iter().enumerate() {
            if self.dirty[i].is_empty() {
                continue;
            }
            if !up {
                self.dirty[i].clear();
                continue;
            }
            let start = snap_entries.len() as u32;
            let table = &self.tables[i];
            snap_entries.extend(
                self.dirty[i]
                    .iter()
                    .filter_map(|&d| table.best(d).map(|e| (d, e.cost, e.hops))),
            );
            self.dirty[i].clear();
            if snap_entries.len() as u32 == start {
                continue;
            }
            snap_from.push((NodeId::new(i as u32), start, snap_entries.len() as u32));
        }
    }

    /// [`DbfEngine::snapshot_delta_round`] by **sender shard**: cuts the
    /// sender id space into contiguous ranges of balanced dirty-entry
    /// count, lets each range flatten its vectors (and drain its dirty
    /// sets) into a shard-local buffer on the worker pool, and
    /// concatenates the buffers in shard (= sender id) order — the exact
    /// arena the sequential helper builds, byte for byte. Light rounds
    /// (or a single busy range) fall through to the sequential helper, so
    /// the snapshot's sequential residue is only ever paid when it is too
    /// small to matter.
    fn snapshot_delta_round_sharded(
        &mut self,
        alive: &[bool],
        shards: usize,
        snap_entries: &mut Vec<(NodeId, f64, u32)>,
        snap_from: &mut Vec<(NodeId, u32, u32)>,
    ) {
        let mut snd_load = std::mem::take(&mut self.scratch.snd_load);
        snd_load.clear();
        snd_load.extend(self.dirty.iter().map(|d| d.len() as u64));
        let mut snd_bounds = std::mem::take(&mut self.scratch.snd_bounds);
        if !plan_sender_shards(&snd_load, shards, &mut snd_bounds) {
            self.snapshot_delta_round(alive, snap_entries, snap_from);
        } else {
            let pool = self.pool(shards);
            snap_entries.clear();
            snap_from.clear();
            let mut shard_entries = std::mem::take(&mut self.scratch.shard_entries);
            let mut shard_from = std::mem::take(&mut self.scratch.shard_from);
            let ranges = snd_bounds.len() - 1;
            shard_entries.resize_with(ranges.max(shard_entries.len()), Vec::new);
            shard_from.resize_with(ranges.max(shard_from.len()), Vec::new);
            let tables = &self.tables;
            let mut tasks: Vec<DeltaSnapTask<'_>> = Vec::with_capacity(ranges);
            let mut dirty_rest = self.dirty.as_mut_slice();
            let mut consumed = 0usize;
            for ((w, ebuf), fbuf) in snd_bounds
                .windows(2)
                .zip(shard_entries.iter_mut())
                .zip(shard_from.iter_mut())
            {
                let (lo, hi) = (w[0], w[1]);
                let (dirty_mine, dirty_next) = dirty_rest.split_at_mut(hi - consumed);
                dirty_rest = dirty_next;
                consumed = hi;
                ebuf.clear();
                fbuf.clear();
                if snd_load[lo..hi].iter().all(|&l| l == 0) {
                    continue; // nothing to flatten (or clear) here
                }
                tasks.push(DeltaSnapTask {
                    lo,
                    dirty: dirty_mine,
                    ebuf,
                    fbuf,
                });
            }
            pool.run(&mut tasks, |t| {
                for (off, dirty) in t.dirty.iter_mut().enumerate() {
                    let i = t.lo + off;
                    if dirty.is_empty() {
                        continue;
                    }
                    if !alive[i] {
                        dirty.clear();
                        continue;
                    }
                    let start = t.ebuf.len() as u32;
                    let table = &tables[i];
                    t.ebuf.extend(
                        dirty
                            .iter()
                            .filter_map(|&d| table.best(d).map(|e| (d, e.cost, e.hops))),
                    );
                    dirty.clear();
                    if t.ebuf.len() as u32 == start {
                        continue;
                    }
                    t.fbuf
                        .push((NodeId::new(i as u32), start, t.ebuf.len() as u32));
                }
            });
            concat_snapshots(
                &shard_entries[..ranges],
                &shard_from[..ranges],
                snap_entries,
                snap_from,
            );
            self.scratch.shard_entries = shard_entries;
            self.scratch.shard_from = shard_from;
        }
        self.scratch.snd_load = snd_load;
        self.scratch.snd_bounds = snd_bounds;
    }

    /// The full-rebuild round snapshot by sender shard: every `pending`
    /// alive node flattens its **whole** table (a node with an empty table
    /// still broadcasts an empty vector, exactly as the sequential loop
    /// counts it). Same range/concatenate discipline as
    /// [`DbfEngine::snapshot_delta_round_sharded`]; the sequential
    /// fallback reproduces the root oracle's snapshot verbatim.
    fn snapshot_full_round_sharded(
        &mut self,
        alive: &[bool],
        pending: &[bool],
        shards: usize,
        snap_entries: &mut Vec<(NodeId, f64, u32)>,
        snap_from: &mut Vec<(NodeId, u32, u32)>,
    ) {
        snap_entries.clear();
        snap_from.clear();
        let mut snd_load = std::mem::take(&mut self.scratch.snd_load);
        snd_load.clear();
        // +1 keeps empty-table broadcasters visible to the busy-range
        // check — their (empty) vector still counts a message.
        snd_load.extend(
            self.tables
                .iter()
                .enumerate()
                .map(|(i, t)| u64::from(pending[i] && alive[i]) * (t.len() as u64 + 1)),
        );
        let mut snd_bounds = std::mem::take(&mut self.scratch.snd_bounds);
        if !plan_sender_shards(&snd_load, shards, &mut snd_bounds) {
            // Deliberately a hand-written copy of the root oracle's
            // snapshot (run_to_convergence_masked), NOT a shared helper:
            // the oracle stays independent of the sharded machinery so the
            // differential proptests compare two genuinely separate
            // constructions. Drift here is pinned by tests/sharded.rs.
            for i in 0..alive.len() {
                if !(pending[i] && alive[i]) {
                    continue;
                }
                let start = snap_entries.len() as u32;
                self.tables[i].append_vector(snap_entries);
                snap_from.push((NodeId::new(i as u32), start, snap_entries.len() as u32));
            }
        } else {
            let pool = self.pool(shards);
            let mut shard_entries = std::mem::take(&mut self.scratch.shard_entries);
            let mut shard_from = std::mem::take(&mut self.scratch.shard_from);
            let ranges = snd_bounds.len() - 1;
            shard_entries.resize_with(ranges.max(shard_entries.len()), Vec::new);
            shard_from.resize_with(ranges.max(shard_from.len()), Vec::new);
            let tables = &self.tables;
            let mut tasks: Vec<FullSnapTask<'_>> = Vec::with_capacity(ranges);
            for ((w, ebuf), fbuf) in snd_bounds
                .windows(2)
                .zip(shard_entries.iter_mut())
                .zip(shard_from.iter_mut())
            {
                let (lo, hi) = (w[0], w[1]);
                ebuf.clear();
                fbuf.clear();
                if snd_load[lo..hi].iter().all(|&l| l == 0) {
                    continue;
                }
                tasks.push(FullSnapTask { lo, hi, ebuf, fbuf });
            }
            pool.run(&mut tasks, |t| {
                for i in t.lo..t.hi {
                    if !(pending[i] && alive[i]) {
                        continue;
                    }
                    let start = t.ebuf.len() as u32;
                    tables[i].append_vector(t.ebuf);
                    t.fbuf
                        .push((NodeId::new(i as u32), start, t.ebuf.len() as u32));
                }
            });
            concat_snapshots(
                &shard_entries[..ranges],
                &shard_from[..ranges],
                snap_entries,
                snap_from,
            );
            self.scratch.shard_entries = shard_entries;
            self.scratch.shard_from = shard_from;
        }
        self.scratch.snd_load = snd_load;
        self.scratch.snd_bounds = snd_bounds;
    }

    /// Wire accounting for one round's snapshot, shared by both delta
    /// loops. All sums are integers, so accumulation order cannot affect
    /// the totals — the sharded rounds stay byte-identical to the
    /// sequential ones on every stats field.
    fn account_delta_round(&self, snap_from: &[(NodeId, u32, u32)], stats: &mut DbfStats) {
        for &(from, start, end) in snap_from {
            let len = (end - start) as usize;
            stats.messages += 1;
            stats.entries_sent += len as u64;
            let bytes = u64::from(self.wire.message_bytes(len));
            stats.bytes_total += bytes;
            stats.per_node_bytes[from.index()] += bytes;
        }
    }

    /// Delta rounds: only nodes with a non-empty dirty set broadcast, and
    /// their vectors carry only the dirty destinations. Quiesces when every
    /// dirty set drains.
    fn run_delta_rounds(&mut self, zones: &ZoneTable, alive: &[bool], stats: &mut DbfStats) {
        let n = zones.len();
        let nd = self.scratch.dests.len();
        let dest_index = std::mem::take(&mut self.scratch.dest_index);
        let member = std::mem::take(&mut self.scratch.member);
        let max_rounds = (n as u32).max(8) + 4;
        for _round in 0..max_rounds {
            stats.rounds += 1;
            if self.dirty.iter().all(BTreeSet::is_empty) {
                self.scratch.dest_index = dest_index;
                self.scratch.member = member;
                return; // quiescent: no triggered updates left
            }
            let mut snap_entries = std::mem::take(&mut self.scratch.snap_entries);
            let mut snap_from = std::mem::take(&mut self.scratch.snap_from);
            self.snapshot_delta_round(alive, &mut snap_entries, &mut snap_from);
            self.account_delta_round(&snap_from, stats);
            for &(from, start, end) in &snap_from {
                let entries = &snap_entries[start as usize..end as usize];
                for link in zones.links(from) {
                    let to = link.neighbor;
                    if !alive[to.index()] {
                        continue;
                    }
                    // Scoped relaxation: every delta entry targets an
                    // affected destination, so zone membership is one
                    // bitmap load (self-routes are excluded because a node
                    // never links to itself).
                    let base = to.index() * nd;
                    let table = &mut self.tables[to.index()];
                    let dirty = &mut self.dirty[to.index()];
                    // Delta vectors are in destination order: one ascending
                    // offer cursor per (vector, receiver) replay.
                    let mut cursor = 0usize;
                    for &(dest, cost, hops) in entries {
                        let di = dest_index[dest.index()] as usize;
                        if !member[base + di] {
                            continue;
                        }
                        if table.offer_ascending(
                            dest,
                            RouteEntry {
                                via: from,
                                cost: link.weight + cost,
                                hops: hops + 1,
                            },
                            &mut cursor,
                        ) {
                            dirty.insert(dest);
                        }
                    }
                }
            }
            self.scratch.snap_entries = snap_entries;
            self.scratch.snap_from = snap_from;
        }
        panic!("incremental DBF failed to converge within {max_rounds} rounds");
    }

    /// Delta rounds through the zone-shard planner: same semantics as
    /// [`DbfEngine::run_delta_rounds`], executed on the engine's
    /// persistent [`WorkerPool`] (up to `shards` threads counting the
    /// dispatcher) per round.
    ///
    /// Each round scatters the previous snapshot's broadcasts into
    /// per-receiver *inboxes* (a CSR over receiver ids, each inbox in
    /// broadcast order — scattered in parallel by receiver range when the
    /// round is heavy), cuts the receiver id space into contiguous ranges
    /// of balanced relaxation load, and hands every range its disjoint
    /// slice of tables and dirty sets. A receiver replays its inbox in
    /// the same order the sequential loop would deliver it, and no table
    /// is shared between ranges, so the input-order-preserving reduction
    /// is simply "the slices land back where they were cut" — results are
    /// bit-identical for every shard count, including 1 (which never
    /// touches the pool).
    ///
    /// The next round's snapshot is **fused** into the relaxation
    /// dispatch: as soon as a range finishes relaxing it drains its own
    /// receivers' dirty sets into shard-local buffers while other ranges
    /// are still relaxing, and the barrier's only sequential residue is
    /// concatenating those buffers in id order. The drain is textually
    /// the same flatten the round-opening snapshot performs, just
    /// executed one barrier early — the arena it produces is
    /// byte-identical, which keeps the whole fused loop on the
    /// sequential oracle's fixpoint (property-tested, tables and stats).
    fn run_delta_rounds_sharded(
        &mut self,
        zones: &ZoneTable,
        alive: &[bool],
        shards: usize,
        stats: &mut DbfStats,
    ) {
        let n = zones.len();
        let nd = self.scratch.dests.len();
        let max_rounds = (n as u32).max(8) + 4;
        // Round 1 opening: the same quiescence check and dirty-set drain
        // the sequential loop's first iteration performs. Every later
        // round's snapshot is fused into the dispatch below.
        stats.rounds += 1;
        if self.dirty.iter().all(BTreeSet::is_empty) {
            return; // quiescent: no triggered updates left
        }
        let mut snap_entries = std::mem::take(&mut self.scratch.snap_entries);
        let mut snap_from = std::mem::take(&mut self.scratch.snap_from);
        self.snapshot_delta_round_sharded(alive, shards, &mut snap_entries, &mut snap_from);
        self.account_delta_round(&snap_from, stats);
        let dest_index = std::mem::take(&mut self.scratch.dest_index);
        let member = std::mem::take(&mut self.scratch.member);
        let mut inbox_start = std::mem::take(&mut self.scratch.inbox_start);
        let mut inbox_msg = std::mem::take(&mut self.scratch.inbox_msg);
        let mut inbox_weight = std::mem::take(&mut self.scratch.inbox_weight);
        let mut load = std::mem::take(&mut self.scratch.load);
        let mut fill = std::mem::take(&mut self.scratch.fill);
        let mut bounds = std::mem::take(&mut self.scratch.bounds);
        let mut msg_of = std::mem::take(&mut self.scratch.msg_of);
        for _round in 1..max_rounds {
            // Deliver the current snapshot: scatter it into per-receiver
            // inboxes (CSR), then cut the receiver id space into
            // contiguous ranges of ≈ equal relaxation load.
            if shards >= 2 && snap_entries.len() as u64 >= SHARD_MIN_LOAD {
                let pool = self.pool(shards);
                scatter_inboxes_pooled(
                    &pool,
                    zones,
                    alive,
                    &snap_from,
                    &mut inbox_start,
                    &mut inbox_msg,
                    &mut inbox_weight,
                    &mut load,
                    &mut msg_of,
                    shards,
                );
            } else {
                scatter_inboxes(
                    zones,
                    alive,
                    &snap_from,
                    &mut inbox_start,
                    &mut inbox_msg,
                    &mut inbox_weight,
                    &mut load,
                    &mut fill,
                );
            }
            let total_load = plan_bounds(&load, shards, &mut bounds);
            let busy = bounds
                .windows(2)
                .filter(|w| load[w[0]..w[1]].iter().any(|&l| l > 0))
                .count();
            let quiet;
            if busy <= 1 || total_load < SHARD_MIN_LOAD {
                // One busy range (or a light round): run inline — the
                // pool handoff is not worth paying. This is also the
                // shards = 1 path and the taper at the end of every
                // convergence, so light engines never start the pool.
                for to in 0..n {
                    let slot = inbox_start[to] as usize..inbox_start[to + 1] as usize;
                    if slot.is_empty() {
                        continue;
                    }
                    relax_inbox(
                        &mut self.tables[to],
                        &mut self.dirty[to],
                        to * nd,
                        &inbox_msg[slot.clone()],
                        &inbox_weight[slot],
                        &snap_entries,
                        &snap_from,
                        &member,
                        &dest_index,
                    );
                }
                quiet = self.dirty.iter().all(BTreeSet::is_empty);
                if quiet {
                    snap_entries.clear();
                    snap_from.clear();
                } else {
                    self.snapshot_delta_round_sharded(
                        alive,
                        shards,
                        &mut snap_entries,
                        &mut snap_from,
                    );
                }
            } else {
                let pool = self.pool(shards);
                let ranges = bounds.len() - 1;
                let mut shard_entries = std::mem::take(&mut self.scratch.shard_entries);
                let mut shard_from = std::mem::take(&mut self.scratch.shard_from);
                let mut range_had = std::mem::take(&mut self.scratch.range_had);
                shard_entries.resize_with(ranges.max(shard_entries.len()), Vec::new);
                shard_from.resize_with(ranges.max(shard_from.len()), Vec::new);
                range_had.clear();
                range_had.resize(ranges, false);
                let mut tasks: Vec<DeltaRangeTask<'_>> = Vec::with_capacity(ranges);
                let mut table_rest = self.tables.as_mut_slice();
                let mut dirty_rest = self.dirty.as_mut_slice();
                let mut had_rest = range_had.as_mut_slice();
                let mut consumed = 0usize;
                for ((w, ebuf), fbuf) in bounds
                    .windows(2)
                    .zip(shard_entries.iter_mut())
                    .zip(shard_from.iter_mut())
                {
                    let (lo, hi) = (w[0], w[1]);
                    let (table_mine, table_next) = table_rest.split_at_mut(hi - consumed);
                    let (dirty_mine, dirty_next) = dirty_rest.split_at_mut(hi - consumed);
                    let (had_mine, had_next) = had_rest.split_at_mut(1);
                    table_rest = table_next;
                    dirty_rest = dirty_next;
                    had_rest = had_next;
                    consumed = hi;
                    ebuf.clear();
                    fbuf.clear();
                    if load[lo..hi].iter().all(|&l| l == 0) {
                        // Nothing addressed to this range. Its relax is a
                        // no-op, and its dirty sets are empty by
                        // induction (every round drains the dirty sets it
                        // populates — only a delivery can repopulate
                        // one), so there is nothing to drain either.
                        continue;
                    }
                    tasks.push(DeltaRangeTask {
                        lo,
                        tables: table_mine,
                        dirty: dirty_mine,
                        ebuf,
                        fbuf,
                        had: &mut had_mine[0],
                    });
                }
                pool.run(&mut tasks, |t| {
                    for (off, (table, dirty)) in
                        t.tables.iter_mut().zip(t.dirty.iter_mut()).enumerate()
                    {
                        let to = t.lo + off;
                        let slot = inbox_start[to] as usize..inbox_start[to + 1] as usize;
                        if slot.is_empty() {
                            continue;
                        }
                        relax_inbox(
                            table,
                            dirty,
                            to * nd,
                            &inbox_msg[slot.clone()],
                            &inbox_weight[slot],
                            &snap_entries,
                            &snap_from,
                            &member,
                            &dest_index,
                        );
                    }
                    // Fused next-round snapshot: drain this range's dirty
                    // sets into its shard-local buffers while other
                    // ranges are still relaxing — the same flatten
                    // `snapshot_delta_round` performs at the top of the
                    // next round, one barrier early.
                    for (off, dirty) in t.dirty.iter_mut().enumerate() {
                        let i = t.lo + off;
                        if dirty.is_empty() {
                            continue;
                        }
                        *t.had = true;
                        if !alive[i] {
                            dirty.clear();
                            continue;
                        }
                        let start = t.ebuf.len() as u32;
                        let table = &t.tables[off];
                        t.ebuf.extend(
                            dirty
                                .iter()
                                .filter_map(|&d| table.best(d).map(|e| (d, e.cost, e.hops))),
                        );
                        dirty.clear();
                        if t.ebuf.len() as u32 == start {
                            continue;
                        }
                        t.fbuf
                            .push((NodeId::new(i as u32), start, t.ebuf.len() as u32));
                    }
                });
                quiet = !range_had.iter().any(|&h| h);
                snap_entries.clear();
                snap_from.clear();
                concat_snapshots(
                    &shard_entries[..ranges],
                    &shard_from[..ranges],
                    &mut snap_entries,
                    &mut snap_from,
                );
                self.scratch.shard_entries = shard_entries;
                self.scratch.shard_from = shard_from;
                self.scratch.range_had = range_had;
            }
            // The loop-top bookkeeping of the sequential formulation,
            // shifted to the barrier: count the round the snapshot
            // belongs to, return on the final silent round, account
            // otherwise.
            stats.rounds += 1;
            if quiet {
                self.scratch.dest_index = dest_index;
                self.scratch.member = member;
                self.scratch.inbox_start = inbox_start;
                self.scratch.inbox_msg = inbox_msg;
                self.scratch.inbox_weight = inbox_weight;
                self.scratch.load = load;
                self.scratch.fill = fill;
                self.scratch.bounds = bounds;
                self.scratch.msg_of = msg_of;
                self.scratch.snap_entries = snap_entries;
                self.scratch.snap_from = snap_from;
                return; // quiescent: no triggered updates left
            }
            self.account_delta_round(&snap_from, stats);
        }
        panic!("sharded incremental DBF failed to converge within {max_rounds} rounds");
    }

    /// Full-rebuild rounds through the shard planner: the execution body of
    /// [`DbfEngine::rebuild_sharded`]. Semantics are exactly
    /// [`DbfEngine::run_to_convergence_masked`] — round 1 every alive node
    /// broadcasts its whole vector, thereafter only nodes whose table
    /// changed in the previous round do, and a round's vectors are
    /// snapshotted before any relaxation — executed on the engine's
    /// persistent [`WorkerPool`] for the sender-sharded round-1 snapshot,
    /// the receiver-range inbox scatter, and the receiver-sharded
    /// relaxation, with each later round's snapshot fused into the
    /// relaxation dispatch (a range flattens its changed tables as soon
    /// as its own relax finishes, exactly like the delta loop). Receivers
    /// replay their CSR inboxes in broadcast order over disjoint table
    /// slices, so tables, pending flags, and every stats field land
    /// bit-identical to the sequential rebuild.
    fn run_full_rounds_sharded(
        &mut self,
        zones: &ZoneTable,
        alive: &[bool],
        shards: usize,
        stats: &mut DbfStats,
    ) {
        assert_eq!(alive.len(), zones.len(), "alive mask length mismatch");
        let n = zones.len();
        let max_rounds = (n as u32).max(8) + 4;
        // Round 1 opening: every alive node is pending and broadcasts its
        // whole (direct-routes-only) vector — the sequential rebuild's
        // first iteration. Later rounds' snapshots are fused below.
        let mut pending = std::mem::take(&mut self.scratch.pending);
        pending.clear();
        pending.extend_from_slice(alive);
        stats.rounds += 1;
        if pending.iter().all(|&p| !p) {
            self.scratch.pending = pending;
            // A full convergence leaves no triggered updates behind —
            // the same postcondition the sequential rebuild restores.
            for set in &mut self.dirty {
                set.clear();
            }
            return; // quiescent: nobody has updates to send
        }
        let mut snap_entries = std::mem::take(&mut self.scratch.snap_entries);
        let mut snap_from = std::mem::take(&mut self.scratch.snap_from);
        self.snapshot_full_round_sharded(
            alive,
            &pending,
            shards,
            &mut snap_entries,
            &mut snap_from,
        );
        self.account_delta_round(&snap_from, stats);
        let mut next_pending = std::mem::take(&mut self.scratch.next_pending);
        let mut inbox_start = std::mem::take(&mut self.scratch.inbox_start);
        let mut inbox_msg = std::mem::take(&mut self.scratch.inbox_msg);
        let mut inbox_weight = std::mem::take(&mut self.scratch.inbox_weight);
        let mut load = std::mem::take(&mut self.scratch.load);
        let mut fill = std::mem::take(&mut self.scratch.fill);
        let mut bounds = std::mem::take(&mut self.scratch.bounds);
        let mut msg_of = std::mem::take(&mut self.scratch.msg_of);
        for _round in 1..max_rounds {
            if shards >= 2 && snap_entries.len() as u64 >= SHARD_MIN_LOAD {
                let pool = self.pool(shards);
                scatter_inboxes_pooled(
                    &pool,
                    zones,
                    alive,
                    &snap_from,
                    &mut inbox_start,
                    &mut inbox_msg,
                    &mut inbox_weight,
                    &mut load,
                    &mut msg_of,
                    shards,
                );
            } else {
                scatter_inboxes(
                    zones,
                    alive,
                    &snap_from,
                    &mut inbox_start,
                    &mut inbox_msg,
                    &mut inbox_weight,
                    &mut load,
                    &mut fill,
                );
            }
            let total_load = plan_bounds(&load, shards, &mut bounds);
            next_pending.clear();
            next_pending.resize(n, false);
            let busy = bounds
                .windows(2)
                .filter(|w| load[w[0]..w[1]].iter().any(|&l| l > 0))
                .count();
            let quiet;
            if busy <= 1 || total_load < SHARD_MIN_LOAD {
                for to in 0..n {
                    let slot = inbox_start[to] as usize..inbox_start[to + 1] as usize;
                    if slot.is_empty() {
                        continue;
                    }
                    relax_inbox_full(
                        &mut self.tables[to],
                        &mut next_pending[to],
                        NodeId::new(to as u32),
                        &inbox_msg[slot.clone()],
                        &inbox_weight[slot],
                        &snap_entries,
                        &snap_from,
                        zones,
                    );
                }
                quiet = next_pending.iter().all(|&p| !p);
                if quiet {
                    snap_entries.clear();
                    snap_from.clear();
                } else {
                    self.snapshot_full_round_sharded(
                        alive,
                        &next_pending,
                        shards,
                        &mut snap_entries,
                        &mut snap_from,
                    );
                }
            } else {
                let pool = self.pool(shards);
                let ranges = bounds.len() - 1;
                let mut shard_entries = std::mem::take(&mut self.scratch.shard_entries);
                let mut shard_from = std::mem::take(&mut self.scratch.shard_from);
                let mut range_had = std::mem::take(&mut self.scratch.range_had);
                shard_entries.resize_with(ranges.max(shard_entries.len()), Vec::new);
                shard_from.resize_with(ranges.max(shard_from.len()), Vec::new);
                range_had.clear();
                range_had.resize(ranges, false);
                let mut tasks: Vec<FullRangeTask<'_>> = Vec::with_capacity(ranges);
                let mut table_rest = self.tables.as_mut_slice();
                let mut flag_rest = next_pending.as_mut_slice();
                let mut had_rest = range_had.as_mut_slice();
                let mut consumed = 0usize;
                for ((w, ebuf), fbuf) in bounds
                    .windows(2)
                    .zip(shard_entries.iter_mut())
                    .zip(shard_from.iter_mut())
                {
                    let (lo, hi) = (w[0], w[1]);
                    let (table_mine, table_next) = table_rest.split_at_mut(hi - consumed);
                    let (flag_mine, flag_next) = flag_rest.split_at_mut(hi - consumed);
                    let (had_mine, had_next) = had_rest.split_at_mut(1);
                    table_rest = table_next;
                    flag_rest = flag_next;
                    had_rest = had_next;
                    consumed = hi;
                    ebuf.clear();
                    fbuf.clear();
                    if load[lo..hi].iter().all(|&l| l == 0) {
                        // Nothing addressed to this range: no relax, no
                        // flags to set, nothing to flatten (flags were
                        // just cleared for the whole id space).
                        continue;
                    }
                    tasks.push(FullRangeTask {
                        lo,
                        tables: table_mine,
                        flags: flag_mine,
                        ebuf,
                        fbuf,
                        had: &mut had_mine[0],
                    });
                }
                pool.run(&mut tasks, |t| {
                    for (off, (table, flag)) in
                        t.tables.iter_mut().zip(t.flags.iter_mut()).enumerate()
                    {
                        let to = t.lo + off;
                        let slot = inbox_start[to] as usize..inbox_start[to + 1] as usize;
                        if slot.is_empty() {
                            continue;
                        }
                        relax_inbox_full(
                            table,
                            flag,
                            NodeId::new(to as u32),
                            &inbox_msg[slot.clone()],
                            &inbox_weight[slot],
                            &snap_entries,
                            &snap_from,
                            zones,
                        );
                    }
                    // Fused next-round snapshot: a changed (= flagged)
                    // node always broadcasts its whole vector, empty or
                    // not — the same unconditional push the sequential
                    // snapshot performs. Flags are only ever set for
                    // alive receivers (dead nodes get no deliveries), so
                    // the `alive` guard mirrors the oracle's check
                    // without changing behavior.
                    for (off, &flag) in t.flags.iter().enumerate() {
                        let i = t.lo + off;
                        if !(flag && alive[i]) {
                            continue;
                        }
                        *t.had = true;
                        let start = t.ebuf.len() as u32;
                        t.tables[off].append_vector(t.ebuf);
                        t.fbuf
                            .push((NodeId::new(i as u32), start, t.ebuf.len() as u32));
                    }
                });
                quiet = !range_had.iter().any(|&h| h);
                snap_entries.clear();
                snap_from.clear();
                concat_snapshots(
                    &shard_entries[..ranges],
                    &shard_from[..ranges],
                    &mut snap_entries,
                    &mut snap_from,
                );
                self.scratch.shard_entries = shard_entries;
                self.scratch.shard_from = shard_from;
                self.scratch.range_had = range_had;
            }
            stats.rounds += 1;
            if quiet {
                self.scratch.pending = pending;
                self.scratch.next_pending = next_pending;
                self.scratch.inbox_start = inbox_start;
                self.scratch.inbox_msg = inbox_msg;
                self.scratch.inbox_weight = inbox_weight;
                self.scratch.load = load;
                self.scratch.fill = fill;
                self.scratch.bounds = bounds;
                self.scratch.msg_of = msg_of;
                self.scratch.snap_entries = snap_entries;
                self.scratch.snap_from = snap_from;
                // A full convergence leaves no triggered updates behind —
                // the same postcondition the sequential rebuild restores.
                for set in &mut self.dirty {
                    set.clear();
                }
                return; // quiescent: nobody has updates to send
            }
            self.account_delta_round(&snap_from, stats);
        }
        panic!("sharded full DBF rebuild failed to converge within {max_rounds} rounds");
    }
}

/// Cuts `0..load.len()` into at most `shards` contiguous ranges of ≈ equal
/// total load, writing the boundary ids into `bounds`
/// (`bounds[i]..bounds[i+1]`; always covers the whole id space). Returns
/// the total load, the caller's pool-dispatch threshold input. Shared by
/// the receiver planner of both sharded round loops and the sender planner
/// of the sharded snapshots.
fn plan_bounds(load: &[u64], shards: usize, bounds: &mut Vec<usize>) -> u64 {
    let n = load.len();
    let total: u64 = load.iter().sum();
    bounds.clear();
    bounds.push(0);
    if shards > 1 && total > 0 {
        let target = total.div_ceil(shards as u64);
        let mut acc = 0u64;
        for (i, &l) in load.iter().enumerate() {
            acc += l;
            if acc >= target && bounds.len() < shards && i + 1 < n {
                bounds.push(i + 1);
                acc = 0;
            }
        }
    }
    bounds.push(n);
    total
}

/// Plans a sender-sharded snapshot: cuts the sender id space into ranges
/// of balanced snapshot weight (via [`plan_bounds`] into `snd_bounds`) and
/// decides whether shard threads pay off — more than one busy range and a
/// total weight at or above [`SHARD_MIN_LOAD`]. Returns `false` when the
/// caller should fall back to its sequential snapshot. Shared by the delta
/// and full-rebuild snapshot scatters, so the spawn policy cannot drift
/// between them.
fn plan_sender_shards(snd_load: &[u64], shards: usize, snd_bounds: &mut Vec<usize>) -> bool {
    let total = plan_bounds(snd_load, shards, snd_bounds);
    let busy = snd_bounds
        .windows(2)
        .filter(|w| snd_load[w[0]..w[1]].iter().any(|&l| l > 0))
        .count();
    busy > 1 && total >= SHARD_MIN_LOAD
}

/// Scatters one round's broadcasts into per-receiver CSR inboxes.
/// Iterating senders in snapshot order makes every inbox replay the exact
/// delivery order of the sequential loop. Fills `inbox_start` (`n + 1`
/// prefix entries), `inbox_msg`/`inbox_weight` (one slot per delivery) and
/// `load` (per-receiver relaxation entries — the shard planner's balancing
/// weight); `fill` is cursor scratch. Shared by the sharded delta rounds
/// and the sharded full rebuild.
#[allow(clippy::too_many_arguments)]
fn scatter_inboxes(
    zones: &ZoneTable,
    alive: &[bool],
    snap_from: &[(NodeId, u32, u32)],
    inbox_start: &mut Vec<u32>,
    inbox_msg: &mut Vec<u32>,
    inbox_weight: &mut Vec<f64>,
    load: &mut Vec<u64>,
    fill: &mut Vec<u32>,
) {
    let n = alive.len();
    inbox_start.clear();
    inbox_start.resize(n + 1, 0);
    for &(from, _, _) in snap_from {
        for link in zones.links(from) {
            let to = link.neighbor.index();
            if alive[to] {
                inbox_start[to + 1] += 1;
            }
        }
    }
    for i in 0..n {
        inbox_start[i + 1] += inbox_start[i];
    }
    let total = inbox_start[n] as usize;
    inbox_msg.clear();
    inbox_msg.resize(total, 0);
    inbox_weight.clear();
    inbox_weight.resize(total, 0.0);
    load.clear();
    load.resize(n, 0);
    fill.clear();
    fill.extend_from_slice(&inbox_start[..n]);
    for (mi, &(from, start, end)) in snap_from.iter().enumerate() {
        let entries = u64::from(end - start);
        for link in zones.links(from) {
            let to = link.neighbor.index();
            if !alive[to] {
                continue;
            }
            let at = fill[to] as usize;
            fill[to] += 1;
            inbox_msg[at] = mi as u32;
            inbox_weight[at] = link.weight;
            load[to] += entries;
        }
    }
}

/// One sender range of a pooled delta snapshot: drain `dirty` (node ids
/// offset by `lo`) into the range's shard-local buffers.
struct DeltaSnapTask<'a> {
    lo: usize,
    dirty: &'a mut [BTreeSet<NodeId>],
    ebuf: &'a mut Vec<(NodeId, f64, u32)>,
    fbuf: &'a mut Vec<(NodeId, u32, u32)>,
}

/// One sender range of a pooled full-rebuild snapshot: flatten every
/// pending alive table in `lo..hi` into the range's shard-local buffers.
struct FullSnapTask<'a> {
    lo: usize,
    hi: usize,
    ebuf: &'a mut Vec<(NodeId, f64, u32)>,
    fbuf: &'a mut Vec<(NodeId, u32, u32)>,
}

/// One receiver range of a fused delta round: relax the range's inboxes,
/// then immediately drain its dirty sets into the next round's
/// shard-local snapshot buffers (setting `had` if any set was non-empty —
/// the range's vote in the quiescence check).
struct DeltaRangeTask<'a> {
    lo: usize,
    tables: &'a mut [RoutingTable],
    dirty: &'a mut [BTreeSet<NodeId>],
    ebuf: &'a mut Vec<(NodeId, f64, u32)>,
    fbuf: &'a mut Vec<(NodeId, u32, u32)>,
    had: &'a mut bool,
}

/// One receiver range of a fused full-rebuild round: like
/// [`DeltaRangeTask`] with change flags in place of dirty sets.
struct FullRangeTask<'a> {
    lo: usize,
    tables: &'a mut [RoutingTable],
    flags: &'a mut [bool],
    ebuf: &'a mut Vec<(NodeId, f64, u32)>,
    fbuf: &'a mut Vec<(NodeId, u32, u32)>,
    had: &'a mut bool,
}

/// One receiver range of the pooled scatter's count pass: `counts` and
/// `load` are the range's own slices (`counts[i]` belongs to receiver
/// `lo + i`).
struct ScatterCountTask<'a> {
    lo: usize,
    counts: &'a mut [u32],
    load: &'a mut [u64],
}

/// One receiver range of the pooled scatter's placement pass: `msg` /
/// `weight` are the range's contiguous CSR segment
/// (`inbox_start[lo]..inbox_start[hi]`).
struct ScatterPlaceTask<'a> {
    lo: usize,
    hi: usize,
    msg: &'a mut [u32],
    weight: &'a mut [f64],
}

/// [`scatter_inboxes`] by receiver range on the worker pool, producing a
/// byte-identical CSR. The sequential scatter is sender-driven — each
/// broadcast pushes into per-receiver cursors, an inherently serial
/// pointer chase over random receivers. The pooled scatter inverts it:
/// every receiver range **pulls** from its own zone links. That leans on
/// two structural facts, both pinned by the scatter differential test:
/// zone links are symmetric with equal weight (`b ∈ links(a) ⟺ a ∈
/// links(b)`; both rows are computed from the same Euclidean distance and
/// radio profile), and links are stored in ascending neighbor id — which
/// is exactly ascending snapshot order, so a pulled inbox replays the
/// same broadcast order the sequential scatter delivers. Count and
/// placement are both range-parallel (a range owns its count slice and
/// its contiguous CSR segment); the only sequential residue is the O(n)
/// prefix sum and the O(n + messages) sender index.
#[allow(clippy::too_many_arguments)]
fn scatter_inboxes_pooled(
    pool: &WorkerPool,
    zones: &ZoneTable,
    alive: &[bool],
    snap_from: &[(NodeId, u32, u32)],
    inbox_start: &mut Vec<u32>,
    inbox_msg: &mut Vec<u32>,
    inbox_weight: &mut Vec<f64>,
    load: &mut Vec<u64>,
    msg_of: &mut Vec<u32>,
    ranges: usize,
) {
    let n = alive.len();
    // The sender index: each broadcaster's `snap_from` position,
    // `u32::MAX` for nodes that are silent this round.
    msg_of.clear();
    msg_of.resize(n, u32::MAX);
    for (mi, &(from, _, _)) in snap_from.iter().enumerate() {
        msg_of[from.index()] = mi as u32;
    }
    if inbox_start.len() != n + 1 {
        inbox_start.clear();
        inbox_start.resize(n + 1, 0);
    }
    if load.len() != n {
        load.clear();
        load.resize(n, 0);
    }
    let width = n.div_ceil(ranges.max(1)).max(1);
    {
        let msg_of = &*msg_of;
        let mut tasks: Vec<ScatterCountTask<'_>> = inbox_start[1..=n]
            .chunks_mut(width)
            .zip(load.chunks_mut(width))
            .enumerate()
            .map(|(j, (counts, load))| ScatterCountTask {
                lo: j * width,
                counts,
                load,
            })
            .collect();
        pool.run(&mut tasks, |t| {
            t.counts.fill(0);
            t.load.fill(0);
            for off in 0..t.counts.len() {
                let to = t.lo + off;
                if !alive[to] {
                    continue;
                }
                for link in zones.links(NodeId::new(to as u32)) {
                    let mi = msg_of[link.neighbor.index()];
                    if mi == u32::MAX {
                        continue;
                    }
                    let (_, start, end) = snap_from[mi as usize];
                    t.counts[off] += 1;
                    t.load[off] += u64::from(end - start);
                }
            }
        });
    }
    inbox_start[0] = 0;
    for i in 0..n {
        inbox_start[i + 1] += inbox_start[i];
    }
    let total = inbox_start[n] as usize;
    // Grow-only, unlike the sequential scatter's exact resize: every slot
    // in `..total` is written by exactly one placement task below, and
    // nothing reads past `inbox_start[n]`, so stale capacity is inert —
    // and steady-state rounds skip the O(total) zeroing memset entirely.
    if inbox_msg.len() < total {
        inbox_msg.resize(total, 0);
        inbox_weight.resize(total, 0.0);
    }
    let msg_of = &*msg_of;
    let mut tasks: Vec<ScatterPlaceTask<'_>> = Vec::with_capacity(n.div_ceil(width));
    let mut msg_rest = &mut inbox_msg[..total];
    let mut weight_rest = &mut inbox_weight[..total];
    let mut lo = 0usize;
    while lo < n {
        let hi = (lo + width).min(n);
        let seg = (inbox_start[hi] - inbox_start[lo]) as usize;
        let (msg_mine, msg_next) = msg_rest.split_at_mut(seg);
        let (weight_mine, weight_next) = weight_rest.split_at_mut(seg);
        msg_rest = msg_next;
        weight_rest = weight_next;
        if seg > 0 {
            tasks.push(ScatterPlaceTask {
                lo,
                hi,
                msg: msg_mine,
                weight: weight_mine,
            });
        }
        lo = hi;
    }
    pool.run(&mut tasks, |t| {
        let mut cur = 0usize;
        for (to, &ok) in alive.iter().enumerate().take(t.hi).skip(t.lo) {
            if !ok {
                continue;
            }
            for link in zones.links(NodeId::new(to as u32)) {
                let mi = msg_of[link.neighbor.index()];
                if mi == u32::MAX {
                    continue;
                }
                t.msg[cur] = mi;
                t.weight[cur] = link.weight;
                cur += 1;
            }
        }
        debug_assert_eq!(cur, t.msg.len(), "pooled scatter count/placement drift");
    });
}

/// Concatenates shard-local snapshot buffers into the round arena in shard
/// (= ascending sender id) order, rebasing each shard's `(sender, start,
/// end)` ranges onto the concatenated entry array — the output is the
/// byte-identical arena the sequential snapshot builds.
fn concat_snapshots(
    shard_entries: &[Vec<(NodeId, f64, u32)>],
    shard_from: &[Vec<(NodeId, u32, u32)>],
    snap_entries: &mut Vec<(NodeId, f64, u32)>,
    snap_from: &mut Vec<(NodeId, u32, u32)>,
) {
    for (ebuf, fbuf) in shard_entries.iter().zip(shard_from) {
        let base = snap_entries.len() as u32;
        snap_entries.extend_from_slice(ebuf);
        snap_from.extend(fbuf.iter().map(|&(from, s, e)| (from, s + base, e + base)));
    }
}

/// One receiver's relaxation for one sharded round: replays the inbox
/// (vector indexes + link weights, in broadcast order) against the
/// receiver's table, recording changed destinations in its dirty set.
/// `member_base` is the receiver's row offset into the scoping bitmap.
/// Free-standing so shard threads can run it on their disjoint slices.
#[allow(clippy::too_many_arguments)]
fn relax_inbox(
    table: &mut RoutingTable,
    dirty: &mut BTreeSet<NodeId>,
    member_base: usize,
    msgs: &[u32],
    weights: &[f64],
    snap_entries: &[(NodeId, f64, u32)],
    snap_from: &[(NodeId, u32, u32)],
    member: &[bool],
    dest_index: &[u32],
) {
    for (&mi, &w) in msgs.iter().zip(weights) {
        let (from, start, end) = snap_from[mi as usize];
        let entries = &snap_entries[start as usize..end as usize];
        // Delta vectors carry their destinations in ascending id order,
        // so each vector replays through one ascending offer cursor.
        let mut cursor = 0usize;
        for &(dest, cost, hops) in entries {
            let di = dest_index[dest.index()] as usize;
            if !member[member_base + di] {
                continue;
            }
            if table.offer_ascending(
                dest,
                RouteEntry {
                    via: from,
                    cost: w + cost,
                    hops: hops + 1,
                },
                &mut cursor,
            ) {
                dirty.insert(dest);
            }
        }
    }
}

/// One receiver's relaxation for one **full-rebuild** sharded round: like
/// [`relax_inbox`], but vectors carry whole tables, so zone scoping is the
/// root oracle's own membership test (`ZoneTable::in_zone`) instead of the
/// affected-destination bitmap, and a change marks the receiver's
/// next-round pending flag rather than a dirty set.
#[allow(clippy::too_many_arguments)]
fn relax_inbox_full(
    table: &mut RoutingTable,
    pending_flag: &mut bool,
    at: NodeId,
    msgs: &[u32],
    weights: &[f64],
    snap_entries: &[(NodeId, f64, u32)],
    snap_from: &[(NodeId, u32, u32)],
    zones: &ZoneTable,
) {
    for (&mi, &w) in msgs.iter().zip(weights) {
        let (from, start, end) = snap_from[mi as usize];
        let entries = &snap_entries[start as usize..end as usize];
        let mut cursor = 0usize;
        for &(dest, cost, hops) in entries {
            if dest == at {
                continue;
            }
            // Zone scoping: `at` only maintains destinations in its own
            // zone — the identical check the sequential rebuild applies.
            if !zones.in_zone(at, dest) {
                continue;
            }
            if table.offer_ascending(
                dest,
                RouteEntry {
                    via: from,
                    cost: w + cost,
                    hops: hops + 1,
                },
                &mut cursor,
            ) {
                *pending_flag = true;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spms_net::placement;
    use spms_phy::RadioProfile;

    fn zones(cols: usize, rows: usize) -> ZoneTable {
        let topo = placement::grid(cols, rows, 5.0).unwrap();
        ZoneTable::build(&topo, &RadioProfile::mica2(), 20.0)
    }

    #[test]
    fn line_converges_to_min_hop_chain() {
        let z = zones(5, 1);
        let mut dbf = DbfEngine::new(&z, 2);
        let stats = dbf.run_to_convergence(&z);
        assert!(stats.messages > 0);
        let t4 = dbf.table(NodeId::new(4));
        let best = t4.best(NodeId::new(0)).unwrap();
        assert_eq!(best.via, NodeId::new(3));
        assert_eq!(best.hops, 4);
        assert!((best.cost - 0.05).abs() < 1e-9);
    }

    #[test]
    fn direct_routes_exist_before_any_exchange() {
        let z = zones(3, 1);
        let dbf = DbfEngine::new(&z, 2);
        let t0 = dbf.table(NodeId::new(0));
        assert_eq!(t0.best(NodeId::new(1)).unwrap().hops, 1);
        assert_eq!(t0.best(NodeId::new(2)).unwrap().hops, 1);
    }

    #[test]
    fn second_route_provides_failover() {
        // 3×3 grid: center-to-corner has two equal shortest paths, so k=2
        // tables hold a genuine alternative.
        let z = zones(3, 3);
        let mut dbf = DbfEngine::new(&z, 2);
        dbf.run_to_convergence(&z);
        let t0 = dbf.table(NodeId::new(0));
        let routes = t0.routes_to(NodeId::new(8));
        assert_eq!(routes.len(), 2);
        assert_ne!(routes.get(0).unwrap().via, routes.get(1).unwrap().via);
    }

    #[test]
    fn masked_run_ignores_dead_nodes() {
        let z = zones(3, 1);
        let mut dbf = DbfEngine::new(&z, 2);
        let mut alive = vec![true; 3];
        alive[1] = false;
        dbf.reset(&z, &alive);
        dbf.run_to_convergence_masked(&z, &alive);
        let t0 = dbf.table(NodeId::new(0));
        // Node 2 is still reachable directly (10 m), never via dead node 1.
        let best = t0.best(NodeId::new(2)).unwrap();
        assert_eq!(best.via, NodeId::new(2));
        assert_eq!(t0.routes_to(NodeId::new(2)).len(), 1);
        assert!(t0.best(NodeId::new(1)).is_none());
    }

    #[test]
    fn stats_account_messages_and_bytes() {
        let z = zones(4, 4);
        let mut dbf = DbfEngine::new(&z, 2);
        let stats = dbf.run_to_convergence(&z);
        assert_eq!(stats.per_node_bytes.len(), 16);
        let per_node_sum: u64 = stats.per_node_bytes.iter().sum();
        assert_eq!(per_node_sum, stats.bytes_total);
        assert!(stats.entries_sent >= stats.messages); // vectors are non-trivial
        let wire = DbfWireFormat::default();
        assert!(stats.bytes_total >= stats.messages * u64::from(wire.header_bytes));
        // Convergence should be far below the panic bound.
        assert!(stats.rounds <= 8, "rounds = {}", stats.rounds);
    }

    #[test]
    fn rerun_after_reset_is_idempotent() {
        let z = zones(4, 1);
        let mut dbf = DbfEngine::new(&z, 2);
        dbf.run_to_convergence(&z);
        let before = dbf.table(NodeId::new(0)).clone();
        dbf.reset(&z, &[true; 4]);
        dbf.run_to_convergence(&z);
        assert_eq!(*dbf.table(NodeId::new(0)), before);
    }

    #[test]
    fn receive_from_out_of_zone_sender_is_ignored() {
        let z = zones(9, 1);
        let mut dbf = DbfEngine::new(&z, 2);
        // Node 8 is 40 m from node 0: out of zone.
        let fake = DbfVector {
            from: NodeId::new(8),
            entries: vec![(NodeId::new(1), 0.01, 1)],
        };
        assert!(!dbf.receive(NodeId::new(0), &fake, &z));
    }

    #[test]
    fn stray_triggered_updates_are_flushed_by_the_next_invalidation() {
        // A manual receive() perturbs a table (and its dirty set) outside
        // any invalidation. The next incremental update must flush it —
        // re-deriving the route from the real topology instead of
        // panicking on or propagating the stray entry.
        let z = zones(5, 5);
        let mut dbf = DbfEngine::new(&z, 2);
        dbf.run_to_convergence(&z);
        let fake = DbfVector {
            from: NodeId::new(1),
            entries: vec![(NodeId::new(2), 0.0001, 1)],
        };
        assert!(dbf.receive(NodeId::new(0), &fake, &z));
        // Invalidate a far-away node: dest 2 is not adjacent to node 24.
        let alive = vec![true; z.len()];
        dbf.invalidate_zone(&z, &[NodeId::new(24)], &alive);
        let mut reference = DbfEngine::new(&z, 2);
        reference.run_to_convergence(&z);
        for i in 0..z.len() {
            let node = NodeId::new(i as u32);
            assert_eq!(dbf.table(node), reference.table(node), "node {node}");
        }
    }

    #[test]
    fn receive_tracks_dirty_destinations_for_the_next_delta() {
        let z = zones(3, 1);
        let mut dbf = DbfEngine::new(&z, 2);
        dbf.run_to_convergence(&z);
        // Converged: nothing to say.
        assert!(dbf.delta_vector_of(NodeId::new(0)).entries.is_empty());
        // A (fabricated) cheaper relay route dirties exactly that entry.
        let v = DbfVector {
            from: NodeId::new(1),
            entries: vec![(NodeId::new(2), 0.001, 1)],
        };
        assert!(dbf.receive(NodeId::new(0), &v, &z));
        let delta = dbf.delta_vector_of(NodeId::new(0));
        assert_eq!(delta.entries.len(), 1);
        assert_eq!(delta.entries[0].0, NodeId::new(2));
    }

    #[test]
    fn no_op_invalidation_quiesces_in_one_silent_round() {
        let z = zones(4, 4);
        let mut dbf = DbfEngine::new(&z, 2);
        dbf.run_to_convergence(&z);
        // "Invalidate" a node that did not actually change: the wipe and
        // reseed re-derive the same tables and the exchange stays local.
        let alive = vec![true; z.len()];
        let stats = dbf.invalidate_zone(&z, &[NodeId::new(5)], &alive);
        let mut reference = DbfEngine::new(&z, 2);
        reference.run_to_convergence(&z);
        for i in 0..z.len() {
            let node = NodeId::new(i as u32);
            assert_eq!(dbf.table(node), reference.table(node), "node {node}");
        }
        // Far cheaper than the full rebuild's all-nodes rounds.
        assert!(stats.messages < (z.len() as u64) * u64::from(stats.rounds));
    }

    #[test]
    fn kill_and_revive_match_full_rebuild() {
        let z = zones(5, 5);
        let mut dbf = DbfEngine::new(&z, 2);
        dbf.run_to_convergence(&z);
        let mut alive = vec![true; z.len()];

        alive[12] = false; // kill the center
        dbf.invalidate_zone(&z, &[NodeId::new(12)], &alive);
        let mut reference = DbfEngine::new(&z, 2);
        reference.reset(&z, &alive);
        reference.run_to_convergence_masked(&z, &alive);
        for i in 0..z.len() {
            let node = NodeId::new(i as u32);
            assert_eq!(dbf.table(node), reference.table(node), "dead: node {node}");
        }

        alive[12] = true; // and bring it back
        dbf.invalidate_zone(&z, &[NodeId::new(12)], &alive);
        let mut reference = DbfEngine::new(&z, 2);
        reference.reset(&z, &alive);
        reference.run_to_convergence_masked(&z, &alive);
        for i in 0..z.len() {
            let node = NodeId::new(i as u32);
            assert_eq!(dbf.table(node), reference.table(node), "back: node {node}");
        }
    }

    #[test]
    fn single_move_matches_full_rebuild() {
        let mut topo = placement::grid(5, 5, 5.0).unwrap();
        let radio = RadioProfile::mica2();
        let old_zones = ZoneTable::build(&topo, &radio, 20.0);
        let mut dbf = DbfEngine::new(&old_zones, 2);
        dbf.run_to_convergence(&old_zones);

        let moved = NodeId::new(7);
        topo.move_node(moved, spms_net::Point::new(19.0, 17.0));
        let new_zones = ZoneTable::build(&topo, &radio, 20.0);
        let alive = vec![true; new_zones.len()];
        let stats = dbf.update_topology(&old_zones, &new_zones, &[moved], &alive);
        assert!(stats.messages > 0);
        assert!(stats.bytes_total > 0);
        assert_eq!(
            stats.per_node_bytes.iter().sum::<u64>(),
            stats.bytes_total,
            "per-node byte accounting must add up"
        );

        let mut reference = DbfEngine::new(&new_zones, 2);
        reference.run_to_convergence(&new_zones);
        for i in 0..new_zones.len() {
            let node = NodeId::new(i as u32);
            assert_eq!(dbf.table(node), reference.table(node), "node {node}");
        }
    }

    #[test]
    fn zone_delta_path_matches_full_rebuild() {
        // The in-place variant: zones patched by `apply_moves`, routing
        // re-converged from the ZoneDelta (no old zone table anywhere),
        // with a silent liveness flip folded in on top.
        let mut topo = placement::grid(5, 5, 5.0).unwrap();
        let radio = RadioProfile::mica2();
        let mut grid = spms_net::SpatialGrid::build(&topo, 20.0);
        let mut zones = ZoneTable::build_indexed(&topo, &radio, &grid, 20.0);
        let mut dbf = DbfEngine::new(&zones, 2);
        dbf.run_to_convergence(&zones);

        let moved = NodeId::new(7);
        let mut alive = vec![true; zones.len()];
        alive[18] = false; // silent flip, reported via `also_changed`
        topo.move_node(moved, spms_net::Point::new(19.0, 17.0));
        grid.move_node(moved, topo.position(moved));
        let delta = zones.apply_moves(&topo, &radio, &grid, &[moved]);
        let stats = dbf.apply_zone_delta(&zones, &delta, &[NodeId::new(18)], &alive);
        assert!(stats.messages > 0);
        assert_eq!(stats.per_node_bytes.iter().sum::<u64>(), stats.bytes_total);

        let mut reference = DbfEngine::new(&zones, 2);
        reference.reset(&zones, &alive);
        reference.run_to_convergence_masked(&zones, &alive);
        for i in 0..zones.len() {
            let node = NodeId::new(i as u32);
            assert_eq!(dbf.table(node), reference.table(node), "node {node}");
        }
    }

    #[test]
    fn sharded_delta_matches_sequential_tables_and_stats() {
        // The same move replayed on a sequential engine and on sharded
        // engines (1, 2 and 8 partitions) must agree on every table AND on
        // every stats field — thread count can never change results.
        let mut topo = placement::grid(7, 7, 5.0).unwrap();
        let radio = RadioProfile::mica2();
        let old_zones = ZoneTable::build(&topo, &radio, 20.0);
        let moved = NodeId::new(24);
        topo.move_node(moved, spms_net::Point::new(3.0, 29.0));
        let new_zones = ZoneTable::build(&topo, &radio, 20.0);
        let alive = vec![true; new_zones.len()];

        let mut sequential = DbfEngine::new(&old_zones, 2);
        sequential.run_to_convergence(&old_zones);
        let want = sequential.update_topology(&old_zones, &new_zones, &[moved], &alive);
        assert!(want.messages > 0);

        for shards in [1usize, 2, 8] {
            let mut sharded = DbfEngine::new(&old_zones, 2).with_shards(shards);
            assert_eq!(sharded.shards(), Some(shards));
            sharded.run_to_convergence(&old_zones);
            let got = sharded.update_topology(&old_zones, &new_zones, &[moved], &alive);
            assert_eq!(got, want, "stats diverged at {shards} shards");
            for i in 0..new_zones.len() {
                let node = NodeId::new(i as u32);
                assert_eq!(
                    sharded.table(node),
                    sequential.table(node),
                    "{shards} shards: node {node}"
                );
            }
        }
    }

    #[test]
    fn sharded_kill_and_revive_match_full_rebuild() {
        let z = zones(6, 6);
        let mut dbf = DbfEngine::new(&z, 2).with_shards(4);
        dbf.run_to_convergence(&z);
        let mut alive = vec![true; z.len()];
        for flip in [false, true] {
            alive[14] = flip;
            dbf.invalidate_zone(&z, &[NodeId::new(14)], &alive);
            let mut reference = DbfEngine::new(&z, 2);
            reference.reset(&z, &alive);
            reference.run_to_convergence_masked(&z, &alive);
            for i in 0..z.len() {
                let node = NodeId::new(i as u32);
                assert_eq!(dbf.table(node), reference.table(node), "up={flip} {node}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "shards must be at least 1")]
    fn zero_shards_panics() {
        let z = zones(3, 3);
        let _ = DbfEngine::new(&z, 2).with_shards(0);
    }

    #[test]
    fn sharded_full_rebuild_matches_sequential_tables_and_stats() {
        // The sharded full rebuild must agree with the root oracle on
        // every table AND every stats field, dead nodes included, for
        // shard counts below, at, and above the busy-range count.
        let z = zones(6, 6);
        let mut alive = vec![true; z.len()];
        alive[14] = false;
        alive[15] = false;
        let mut sequential = DbfEngine::new(&z, 2);
        sequential.reset(&z, &alive);
        let want = sequential.run_to_convergence_masked(&z, &alive);
        for shards in [1usize, 2, 8, 64] {
            let mut sharded = DbfEngine::new(&z, 2).with_shards(shards);
            let got = sharded.rebuild_sharded(&z, &alive);
            assert_eq!(got, want, "stats diverged at {shards} shards");
            for i in 0..z.len() {
                let node = NodeId::new(i as u32);
                assert_eq!(
                    sharded.table(node),
                    sequential.table(node),
                    "{shards} shards: node {node}"
                );
            }
        }
    }

    #[test]
    fn sharded_paths_at_paper_scale_match_sequential() {
        // At the paper's n = 169 the snapshot weight clears the
        // pool-dispatch threshold, so this differential exercises the
        // sender-sharded snapshot scatter on both the full rebuild and a
        // multi-mover delta re-convergence — not just the receiver-sharded
        // relaxation the small-grid tests reach.
        let mut topo = placement::grid(13, 13, 5.0).unwrap();
        let radio = RadioProfile::mica2();
        let old_zones = ZoneTable::build(&topo, &radio, 20.0);
        let movers: Vec<NodeId> = [15u32, 60, 84, 120, 150]
            .iter()
            .map(|&i| NodeId::new(i))
            .collect();
        for (j, &m) in movers.iter().enumerate() {
            let p = topo.position(m);
            topo.move_node(
                m,
                spms_net::Point::new(p.x + 7.5, (j as f64).mul_add(2.5, p.y)),
            );
        }
        let new_zones = ZoneTable::build(&topo, &radio, 20.0);
        let alive = vec![true; new_zones.len()];

        let mut sequential = DbfEngine::new(&old_zones, 2);
        sequential.reset(&old_zones, &alive);
        let full_want = sequential.run_to_convergence_masked(&old_zones, &alive);
        let delta_want = sequential.update_topology(&old_zones, &new_zones, &movers, &alive);
        assert!(
            delta_want.entries_sent > 1024,
            "the delta must be heavy enough to exercise the sharded snapshot \
             (sent {})",
            delta_want.entries_sent
        );

        for shards in [2usize, 8] {
            let mut sharded = DbfEngine::new(&old_zones, 2).with_shards(shards);
            let full_got = sharded.rebuild_sharded(&old_zones, &alive);
            assert_eq!(full_got, full_want, "full stats diverged at {shards}");
            let delta_got = sharded.update_topology(&old_zones, &new_zones, &movers, &alive);
            assert_eq!(delta_got, delta_want, "delta stats diverged at {shards}");
            assert!(
                sharded.pool_started(),
                "{shards} shards: a paper-scale run must engage the worker pool"
            );
            for i in 0..new_zones.len() {
                let node = NodeId::new(i as u32);
                assert_eq!(
                    sharded.table(node),
                    sequential.table(node),
                    "{shards} shards: node {node}"
                );
            }
        }
    }

    #[test]
    fn rebuild_sharded_without_shards_is_the_sequential_rebuild() {
        // An unsharded engine dispatches to the root oracle loop itself.
        let z = zones(4, 4);
        let alive = vec![true; z.len()];
        let mut a = DbfEngine::new(&z, 2);
        let got = a.rebuild_sharded(&z, &alive);
        let mut b = DbfEngine::new(&z, 2);
        b.reset(&z, &alive);
        let want = b.run_to_convergence_masked(&z, &alive);
        assert_eq!(got, want);
        for i in 0..z.len() {
            let node = NodeId::new(i as u32);
            assert_eq!(a.table(node), b.table(node), "node {node}");
        }
    }

    #[test]
    fn rebuild_sharded_resets_stale_state_first() {
        // Rebuilding over a perturbed engine (stray receive + stale
        // liveness) starts from scratch: the result only depends on the
        // inputs, exactly like reset + run_to_convergence_masked.
        let z = zones(5, 5);
        let mut dbf = DbfEngine::new(&z, 2).with_shards(4);
        dbf.run_to_convergence(&z);
        let fake = DbfVector {
            from: NodeId::new(1),
            entries: vec![(NodeId::new(2), 0.0001, 1)],
        };
        assert!(dbf.receive(NodeId::new(0), &fake, &z));
        let alive = vec![true; z.len()];
        dbf.rebuild_sharded(&z, &alive);
        let mut reference = DbfEngine::new(&z, 2);
        reference.run_to_convergence(&z);
        for i in 0..z.len() {
            let node = NodeId::new(i as u32);
            assert_eq!(dbf.table(node), reference.table(node), "node {node}");
        }
        // And the engine is cleanly converged: nothing left to say.
        assert!(dbf.delta_vector_of(NodeId::new(0)).entries.is_empty());
    }

    #[test]
    fn delta_costs_less_than_full_rebuild() {
        let mut topo = placement::grid(7, 7, 5.0).unwrap();
        let radio = RadioProfile::mica2();
        let old_zones = ZoneTable::build(&topo, &radio, 20.0);
        let mut dbf = DbfEngine::new(&old_zones, 2);
        dbf.run_to_convergence(&old_zones);

        let moved = NodeId::new(3);
        topo.move_node(moved, spms_net::Point::new(30.0, 30.0));
        let new_zones = ZoneTable::build(&topo, &radio, 20.0);
        let alive = vec![true; new_zones.len()];
        let delta = dbf.update_topology(&old_zones, &new_zones, &[moved], &alive);

        let mut full = DbfEngine::new(&new_zones, 2);
        full.reset(&new_zones, &alive);
        let full_stats = full.run_to_convergence_masked(&new_zones, &alive);
        assert!(
            delta.entries_sent < full_stats.entries_sent / 2,
            "delta {} vs full {}",
            delta.entries_sent,
            full_stats.entries_sent
        );
        assert!(delta.bytes_total < full_stats.bytes_total);
    }

    #[test]
    fn pooled_scatter_is_byte_identical_to_sequential_scatter() {
        // The differential test promised by the `scatter_inboxes_pooled`
        // doc comment: the receiver-driven pooled scatter leans on zone
        // links being symmetric and stored in ascending neighbor id, and
        // this pins the resulting CSR — prefix, message order, weights
        // and planner loads — against the sender-driven sequential
        // scatter, with silent senders and dead receivers in the mix.
        let z = zones(13, 13);
        let n = z.len();
        let mut alive = vec![true; n];
        for i in [7usize, 40, 41, 100] {
            alive[i] = false;
        }
        // A synthetic round snapshot: the scatter only reads the
        // `(sender, start, end)` spans, never the entry payloads.
        // Roughly two thirds of the alive nodes broadcast, with vector
        // lengths 0..5 (zero-length broadcasts still occupy inbox slots).
        let mut snap_from: Vec<(NodeId, u32, u32)> = Vec::new();
        let mut acc = 0u32;
        for (i, &up) in alive.iter().enumerate() {
            if !up || i % 3 == 0 {
                continue;
            }
            let len = (i % 5) as u32;
            snap_from.push((NodeId::new(i as u32), acc, acc + len));
            acc += len;
        }

        let (mut start_a, mut msg_a, mut w_a, mut load_a, mut fill) =
            (Vec::new(), Vec::new(), Vec::new(), Vec::new(), Vec::new());
        scatter_inboxes(
            &z,
            &alive,
            &snap_from,
            &mut start_a,
            &mut msg_a,
            &mut w_a,
            &mut load_a,
            &mut fill,
        );
        let total = start_a[n] as usize;
        assert!(total > 0, "the differential needs a non-trivial round");

        let pool = WorkerPool::new(3);
        let (mut start_b, mut msg_b, mut w_b, mut load_b, mut msg_of) =
            (Vec::new(), Vec::new(), Vec::new(), Vec::new(), Vec::new());
        for ranges in [1usize, 2, 3, 8, 64] {
            // Reusing the same output buffers across iterations also
            // exercises the grow-only steady-state reuse path.
            scatter_inboxes_pooled(
                &pool,
                &z,
                &alive,
                &snap_from,
                &mut start_b,
                &mut msg_b,
                &mut w_b,
                &mut load_b,
                &mut msg_of,
                ranges,
            );
            assert_eq!(start_b, start_a, "{ranges} ranges: CSR prefix");
            assert_eq!(
                &msg_b[..total],
                &msg_a[..],
                "{ranges} ranges: delivery order"
            );
            assert_eq!(&w_b[..total], &w_a[..], "{ranges} ranges: link weights");
            assert_eq!(load_b, load_a, "{ranges} ranges: planner load");
        }
    }

    #[test]
    fn sub_threshold_rounds_stay_inline_and_never_start_the_pool() {
        // Satellite for the SHARD_MIN_LOAD recalibration: on a 5-node
        // line every delta and full-rebuild round is far below the
        // threshold, so even a widely-sharded engine must keep the whole
        // exchange on the calling thread — no worker threads spawned —
        // and still land byte-identical to the sequential engine.
        let mut topo = placement::grid(5, 1, 5.0).unwrap();
        let radio = RadioProfile::mica2();
        let old_zones = ZoneTable::build(&topo, &radio, 20.0);
        let moved = NodeId::new(2);
        topo.move_node(moved, spms_net::Point::new(11.0, 4.0));
        let new_zones = ZoneTable::build(&topo, &radio, 20.0);
        let alive = vec![true; new_zones.len()];

        let mut sequential = DbfEngine::new(&old_zones, 2);
        sequential.reset(&old_zones, &alive);
        let full_want = sequential.run_to_convergence_masked(&old_zones, &alive);
        let delta_want = sequential.update_topology(&old_zones, &new_zones, &[moved], &alive);

        let mut sharded = DbfEngine::new(&old_zones, 2).with_shards(8);
        let full_got = sharded.rebuild_sharded(&old_zones, &alive);
        assert_eq!(full_got, full_want);
        let delta_got = sharded.update_topology(&old_zones, &new_zones, &[moved], &alive);
        assert_eq!(delta_got, delta_want);
        assert!(
            !sharded.pool_started(),
            "sub-threshold rounds must not spin up the worker pool"
        );
        for i in 0..new_zones.len() {
            let node = NodeId::new(i as u32);
            assert_eq!(sharded.table(node), sequential.table(node), "node {node}");
        }
    }

    #[test]
    fn pool_persists_across_epochs_and_clones_start_fresh() {
        // The pool is created lazily on the first heavy round, then
        // reused for every subsequent epoch (ping-pong re-convergence
        // below re-enters the delta loop many times on the same engine).
        // A cloned engine shares tables but never threads: it lazily
        // builds its own pool.
        let mut topo = placement::grid(13, 13, 5.0).unwrap();
        let radio = RadioProfile::mica2();
        let zones_a = ZoneTable::build(&topo, &radio, 20.0);
        let movers: Vec<NodeId> = [15u32, 60, 84].iter().map(|&i| NodeId::new(i)).collect();
        for &m in &movers {
            let p = topo.position(m);
            topo.move_node(m, spms_net::Point::new(p.x + 7.5, p.y + 2.5));
        }
        let zones_b = ZoneTable::build(&topo, &radio, 20.0);
        let alive = vec![true; zones_a.len()];

        let mut sequential = DbfEngine::new(&zones_a, 2);
        sequential.reset(&zones_a, &alive);
        sequential.run_to_convergence_masked(&zones_a, &alive);

        let mut sharded = DbfEngine::new(&zones_a, 2).with_shards(4);
        sharded.rebuild_sharded(&zones_a, &alive);
        assert!(sharded.pool_started(), "a 169-node rebuild is pool work");

        // Ten ping-pong epochs on the same engine: same parked workers,
        // same fixpoints as the sequential replay at every step.
        let mut flips = [(&zones_a, &zones_b), (&zones_b, &zones_a)]
            .into_iter()
            .cycle();
        for epoch in 0..10 {
            let (from, to) = flips.next().unwrap();
            let want = sequential.update_topology(from, to, &movers, &alive);
            let got = sharded.update_topology(from, to, &movers, &alive);
            assert_eq!(got, want, "epoch {epoch}");
        }

        let clone = sharded.clone();
        assert!(
            !clone.pool_started(),
            "a cloned engine must not share or inherit worker threads"
        );
        for i in 0..zones_a.len() {
            let node = NodeId::new(i as u32);
            assert_eq!(clone.table(node), sequential.table(node), "node {node}");
        }
        // The clone converges independently — spinning up its own pool —
        // while the original keeps working. Drop order between the two
        // pools is then arbitrary, which is the point.
        let mut clone = clone;
        let want = sequential.update_topology(&zones_a, &zones_b, &movers, &alive);
        let got_clone = clone.update_topology(&zones_a, &zones_b, &movers, &alive);
        let got_orig = sharded.update_topology(&zones_a, &zones_b, &movers, &alive);
        assert_eq!(got_clone, want);
        assert_eq!(got_orig, want);
        assert!(clone.pool_started());
    }

    #[test]
    fn engine_with_live_pool_is_send_and_sync() {
        // The workload sweeps move engines across threads; the pool
        // handle must not cost the engine its auto traits.
        fn check<T: Send + Sync>(_: &T) {}
        let z = zones(13, 13);
        let alive = vec![true; z.len()];
        let mut dbf = DbfEngine::new(&z, 2).with_shards(4);
        dbf.rebuild_sharded(&z, &alive);
        assert!(dbf.pool_started());
        check(&dbf);
    }
}
