//! The distributed Bellman-Ford exchange.
//!
//! DBF runs in synchronous rounds: every node whose table changed since its
//! last broadcast sends its distance vector to its zone neighbors (at the
//! zone/ADV power level); receivers relax their tables; the exchange
//! quiesces when a round produces no changes. The paper quotes the classic
//! `O(n·e)` convergence bound and argues zone sizes (5–50 nodes) keep it
//! affordable — our stats let experiments verify that claim directly.

use spms_net::{NodeId, ZoneTable};

use crate::{DbfWireFormat, RouteEntry, RoutingTable};

/// A node's broadcast distance vector: its best known cost and hop count to
/// each destination it maintains.
#[derive(Clone, Debug, PartialEq)]
pub struct DbfVector {
    /// The sender.
    pub from: NodeId,
    /// `(destination, best cost, best hops)` triples in destination order.
    pub entries: Vec<(NodeId, f64, u32)>,
}

/// Cost accounting for one DBF execution.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct DbfStats {
    /// Synchronous rounds until quiescence (including the final silent one).
    pub rounds: u32,
    /// Vector broadcasts sent.
    pub messages: u64,
    /// Total vector entries across all broadcasts.
    pub entries_sent: u64,
    /// Total bytes on air, per the configured wire format.
    pub bytes_total: u64,
    /// Bytes broadcast by each node (for per-node energy charging).
    pub per_node_bytes: Vec<u64>,
}

/// The distributed Bellman-Ford engine: one routing table per node.
///
/// # Example
///
/// ```
/// use spms_net::{placement, NodeId, ZoneTable};
/// use spms_phy::RadioProfile;
/// use spms_routing::DbfEngine;
///
/// let topo = placement::grid(3, 3, 5.0).unwrap();
/// let zones = ZoneTable::build(&topo, &RadioProfile::mica2(), 20.0);
/// let mut dbf = DbfEngine::new(&zones, 2);
/// dbf.run_to_convergence(&zones);
/// // The corner reaches the opposite corner through an adjacent node.
/// let best = dbf.table(NodeId::new(0)).best(NodeId::new(8)).unwrap();
/// assert!(best.hops >= 2);
/// ```
#[derive(Clone, Debug)]
pub struct DbfEngine {
    tables: Vec<RoutingTable>,
    k: usize,
    wire: DbfWireFormat,
}

impl DbfEngine {
    /// Creates an engine with direct (one-hop) routes installed for every
    /// zone link, keeping `k` alternatives per destination.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    #[must_use]
    pub fn new(zones: &ZoneTable, k: usize) -> Self {
        let mut engine = DbfEngine {
            tables: (0..zones.len()).map(|_| RoutingTable::new(k)).collect(),
            k,
            wire: DbfWireFormat::default(),
        };
        engine.reset(zones, &vec![true; zones.len()]);
        engine
    }

    /// Overrides the wire format used for byte accounting.
    #[must_use]
    pub fn with_wire_format(mut self, wire: DbfWireFormat) -> Self {
        self.wire = wire;
        self
    }

    /// The number of route alternatives kept per destination.
    #[must_use]
    pub fn k(&self) -> usize {
        self.k
    }

    /// Reinstalls direct routes from scratch, skipping dead nodes — the
    /// paper's "re-execution of the DBF" after mobility or failure.
    pub fn reset(&mut self, zones: &ZoneTable, alive: &[bool]) {
        assert_eq!(alive.len(), zones.len(), "alive mask length mismatch");
        for table in &mut self.tables {
            table.clear();
        }
        for a in 0..zones.len() {
            if !alive[a] {
                continue;
            }
            let node = NodeId::new(a as u32);
            for link in zones.links(node) {
                if !alive[link.neighbor.index()] {
                    continue;
                }
                self.tables[a].offer(
                    link.neighbor,
                    RouteEntry {
                        via: link.neighbor,
                        cost: link.weight,
                        hops: 1,
                    },
                );
            }
        }
    }

    /// The routing table of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    #[must_use]
    pub fn table(&self, node: NodeId) -> &RoutingTable {
        &self.tables[node.index()]
    }

    /// All tables, indexed by node (consumed by the simulation engine).
    #[must_use]
    pub fn into_tables(self) -> Vec<RoutingTable> {
        self.tables
    }

    /// Builds the distance vector `node` would broadcast now.
    #[must_use]
    pub fn vector_of(&self, node: NodeId) -> DbfVector {
        let table = &self.tables[node.index()];
        let entries = table
            .destinations()
            .filter_map(|d| table.best(d).map(|e| (d, e.cost, e.hops)))
            .collect();
        DbfVector {
            from: node,
            entries,
        }
    }

    /// Applies a received vector at `at`: relaxes `at`'s table with routes
    /// via the sender. Returns `true` if the table changed.
    pub fn receive(&mut self, at: NodeId, vector: &DbfVector, zones: &ZoneTable) -> bool {
        let Some(link) = zones.link_to(at, vector.from) else {
            return false; // sender out of zone (stale broadcast after a move)
        };
        let w = link.weight;
        let mut changed = false;
        for &(dest, cost, hops) in &vector.entries {
            if dest == at {
                continue;
            }
            // Zone scoping: `at` only maintains destinations in its own zone.
            if !zones.in_zone(at, dest) {
                continue;
            }
            changed |= self.tables[at.index()].offer(
                dest,
                RouteEntry {
                    via: vector.from,
                    cost: w + cost,
                    hops: hops + 1,
                },
            );
        }
        changed
    }

    /// Runs synchronous rounds until quiescence with every node alive.
    pub fn run_to_convergence(&mut self, zones: &ZoneTable) -> DbfStats {
        self.run_to_convergence_masked(zones, &vec![true; zones.len()])
    }

    /// Runs synchronous rounds until quiescence, excluding dead nodes.
    ///
    /// Triggered-update semantics: in round 1 every (alive) node broadcasts;
    /// thereafter only nodes whose table changed in the previous round do.
    /// Vectors within a round are snapshotted first, so the exchange is
    /// order-independent and deterministic.
    ///
    /// # Panics
    ///
    /// Panics if the alive mask length does not match, or if the exchange
    /// fails to converge within a generous bound (which would indicate a
    /// negative-cost or bookkeeping bug, as positive-weight DBF always
    /// converges).
    pub fn run_to_convergence_masked(&mut self, zones: &ZoneTable, alive: &[bool]) -> DbfStats {
        assert_eq!(alive.len(), zones.len(), "alive mask length mismatch");
        let n = zones.len();
        let mut stats = DbfStats {
            per_node_bytes: vec![0; n],
            ..DbfStats::default()
        };
        let mut pending: Vec<bool> = alive.to_vec();
        // Positive weights: path costs strictly increase with hops, so
        // convergence takes at most diameter+2 rounds; n+4 is a safe bound.
        let max_rounds = (n as u32).max(8) + 4;

        for _round in 0..max_rounds {
            stats.rounds += 1;
            if pending.iter().all(|&p| !p) {
                return stats; // quiescent: nobody has updates to send
            }
            // Snapshot the vectors of every broadcasting node.
            let vectors: Vec<DbfVector> = (0..n)
                .filter(|&i| pending[i] && alive[i])
                .map(|i| self.vector_of(NodeId::new(i as u32)))
                .collect();
            let mut next_pending = vec![false; n];
            for v in &vectors {
                stats.messages += 1;
                stats.entries_sent += v.entries.len() as u64;
                let bytes = u64::from(self.wire.message_bytes(v.entries.len()));
                stats.bytes_total += bytes;
                stats.per_node_bytes[v.from.index()] += bytes;
                for link in zones.links(v.from) {
                    let to = link.neighbor;
                    if !alive[to.index()] {
                        continue;
                    }
                    if self.receive(to, v, zones) {
                        next_pending[to.index()] = true;
                    }
                }
            }
            pending = next_pending;
        }
        panic!("DBF failed to converge within {max_rounds} rounds");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spms_net::placement;
    use spms_phy::RadioProfile;

    fn zones(cols: usize, rows: usize) -> ZoneTable {
        let topo = placement::grid(cols, rows, 5.0).unwrap();
        ZoneTable::build(&topo, &RadioProfile::mica2(), 20.0)
    }

    #[test]
    fn line_converges_to_min_hop_chain() {
        let z = zones(5, 1);
        let mut dbf = DbfEngine::new(&z, 2);
        let stats = dbf.run_to_convergence(&z);
        assert!(stats.messages > 0);
        let t4 = dbf.table(NodeId::new(4));
        let best = t4.best(NodeId::new(0)).unwrap();
        assert_eq!(best.via, NodeId::new(3));
        assert_eq!(best.hops, 4);
        assert!((best.cost - 0.05).abs() < 1e-9);
    }

    #[test]
    fn direct_routes_exist_before_any_exchange() {
        let z = zones(3, 1);
        let dbf = DbfEngine::new(&z, 2);
        let t0 = dbf.table(NodeId::new(0));
        assert_eq!(t0.best(NodeId::new(1)).unwrap().hops, 1);
        assert_eq!(t0.best(NodeId::new(2)).unwrap().hops, 1);
    }

    #[test]
    fn second_route_provides_failover() {
        // 3×3 grid: center-to-corner has two equal shortest paths, so k=2
        // tables hold a genuine alternative.
        let z = zones(3, 3);
        let mut dbf = DbfEngine::new(&z, 2);
        dbf.run_to_convergence(&z);
        let t0 = dbf.table(NodeId::new(0));
        let routes = t0.routes_to(NodeId::new(8));
        assert_eq!(routes.len(), 2);
        assert_ne!(routes[0].via, routes[1].via);
    }

    #[test]
    fn masked_run_ignores_dead_nodes() {
        let z = zones(3, 1);
        let mut dbf = DbfEngine::new(&z, 2);
        let mut alive = vec![true; 3];
        alive[1] = false;
        dbf.reset(&z, &alive);
        dbf.run_to_convergence_masked(&z, &alive);
        let t0 = dbf.table(NodeId::new(0));
        // Node 2 is still reachable directly (10 m), never via dead node 1.
        let best = t0.best(NodeId::new(2)).unwrap();
        assert_eq!(best.via, NodeId::new(2));
        assert_eq!(t0.routes_to(NodeId::new(2)).len(), 1);
        assert!(t0.best(NodeId::new(1)).is_none());
    }

    #[test]
    fn stats_account_messages_and_bytes() {
        let z = zones(4, 4);
        let mut dbf = DbfEngine::new(&z, 2);
        let stats = dbf.run_to_convergence(&z);
        assert_eq!(stats.per_node_bytes.len(), 16);
        let per_node_sum: u64 = stats.per_node_bytes.iter().sum();
        assert_eq!(per_node_sum, stats.bytes_total);
        assert!(stats.entries_sent >= stats.messages); // vectors are non-trivial
        let wire = DbfWireFormat::default();
        assert!(stats.bytes_total >= stats.messages * u64::from(wire.header_bytes));
        // Convergence should be far below the panic bound.
        assert!(stats.rounds <= 8, "rounds = {}", stats.rounds);
    }

    #[test]
    fn rerun_after_reset_is_idempotent() {
        let z = zones(4, 1);
        let mut dbf = DbfEngine::new(&z, 2);
        dbf.run_to_convergence(&z);
        let before = dbf.table(NodeId::new(0)).clone();
        dbf.reset(&z, &[true; 4]);
        dbf.run_to_convergence(&z);
        assert_eq!(*dbf.table(NodeId::new(0)), before);
    }

    #[test]
    fn receive_from_out_of_zone_sender_is_ignored() {
        let z = zones(9, 1);
        let mut dbf = DbfEngine::new(&z, 2);
        // Node 8 is 40 m from node 0: out of zone.
        let fake = DbfVector {
            from: NodeId::new(8),
            entries: vec![(NodeId::new(1), 0.01, 1)],
        };
        assert!(!dbf.receive(NodeId::new(0), &fake, &z));
    }
}
