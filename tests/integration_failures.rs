//! Failure-injection integration tests: the F-SPMS/F-SPIN behavior of
//! §5.1.2 — transient node failures with exponential inter-arrival and
//! uniform repair.

use spms::{ProtocolKind, RoutingMode, SimConfig, Simulation};
use spms_kernel::SimTime;
use spms_net::{placement, ChurnConfig, FailureConfig, MobilityConfig};
use spms_workloads::traffic;

fn run_with_failures(
    protocol: ProtocolKind,
    failures: Option<FailureConfig>,
    seed: u64,
) -> spms::RunMetrics {
    let topo = placement::grid(5, 5, 5.0).unwrap();
    let mut config = SimConfig::paper_defaults(protocol, seed);
    config.failures = failures;
    let plan = traffic::all_to_all(25, 2, SimTime::from_millis(250), seed).unwrap();
    Simulation::run_with(config, topo, plan).unwrap()
}

#[test]
fn failures_are_injected_and_recovered() {
    let m = run_with_failures(ProtocolKind::Spms, Some(FailureConfig::paper_defaults()), 1);
    assert!(m.failures_injected > 0, "the schedule must fire");
    // Transient failures with MTTR 10 ms must not prevent near-complete
    // delivery: recovery paths (SCONE failover, re-REQ on repair) exist.
    assert!(
        m.delivery_ratio() > 0.95,
        "delivery ratio {} too low",
        m.delivery_ratio()
    );
}

#[test]
fn spin_also_survives_failures_via_readvertisement() {
    let m = run_with_failures(ProtocolKind::Spin, Some(FailureConfig::paper_defaults()), 2);
    assert!(m.failures_injected > 0);
    assert!(
        m.delivery_ratio() > 0.9,
        "delivery ratio {}",
        m.delivery_ratio()
    );
}

#[test]
fn failures_increase_average_delay() {
    // Averaged over several seeds to smooth the stochastic failure
    // placement — the paper's Figure 10 claim.
    let mut ff = 0.0;
    let mut f = 0.0;
    for seed in [3, 4, 5, 6] {
        ff += run_with_failures(ProtocolKind::Spms, None, seed).avg_delay_ms();
        f += run_with_failures(
            ProtocolKind::Spms,
            Some(FailureConfig::paper_defaults()),
            seed,
        )
        .avg_delay_ms();
    }
    assert!(
        f > ff * 0.99,
        "failure-case delay {f:.2} should not undercut failure-free {ff:.2}"
    );
}

#[test]
fn heavier_failure_rates_hurt_more() {
    let light = FailureConfig {
        mean_interarrival: SimTime::from_millis(200),
        ..FailureConfig::paper_defaults()
    };
    let heavy = FailureConfig {
        mean_interarrival: SimTime::from_millis(10),
        ..FailureConfig::paper_defaults()
    };
    let m_light = run_with_failures(ProtocolKind::Spms, Some(light), 7);
    let m_heavy = run_with_failures(ProtocolKind::Spms, Some(heavy), 7);
    assert!(m_heavy.failures_injected > m_light.failures_injected);
    // More failures → more dropped frames (cancelled transfers).
    assert!(
        m_heavy.messages.dropped.value() >= m_light.messages.dropped.value(),
        "heavy {} vs light {}",
        m_heavy.messages.dropped.value(),
        m_light.messages.dropped.value()
    );
}

#[test]
fn failure_runs_are_deterministic() {
    let a = run_with_failures(
        ProtocolKind::Spms,
        Some(FailureConfig::paper_defaults()),
        42,
    );
    let b = run_with_failures(
        ProtocolKind::Spms,
        Some(FailureConfig::paper_defaults()),
        42,
    );
    assert_eq!(a, b);
}

#[test]
fn mass_departures_and_rejoins_run_to_completion() {
    // ISSUE 8 heavy churn at its extreme: EVERY live node leaves at each
    // churn epoch and the departed cohort rejoins at the next — the field
    // repeatedly empties and refills. The run must still terminate, count
    // whole cohorts, and replay byte-for-byte from its seed.
    let run = || {
        let topo = placement::grid(5, 5, 5.0).unwrap();
        let mut config = SimConfig::paper_defaults(ProtocolKind::Spms, 11);
        config.churn = Some(ChurnConfig::new(SimTime::from_millis(60), 1.0).unwrap());
        config.horizon = SimTime::from_secs(2);
        let plan = traffic::all_to_all(25, 2, SimTime::from_millis(250), 11).unwrap();
        Simulation::run_with(config, topo, plan).unwrap()
    };
    let m = run();
    assert!(m.adversary.churn_epochs >= 2, "leave and rejoin must fire");
    assert!(
        m.adversary.churn_leaves >= 25,
        "a full cohort must depart ({} leaves)",
        m.adversary.churn_leaves
    );
    assert!(m.adversary.churn_joins >= 25, "the cohort must rejoin");
    assert_eq!(m, run(), "mass churn must be deterministic");
}

#[test]
fn churn_epochs_match_all_pairs_zone_rebuilds() {
    // Cohort-sized joins/leaves per epoch, on top of mobility and
    // failures, must leave the incremental zone engine bit-identical to
    // the all-pairs reference build: runs with `incremental_zones` on and
    // off may differ only in the zone-patch accounting itself.
    let run = |incremental_zones: bool| {
        let topo = placement::grid(5, 5, 5.0).unwrap();
        let mut config = SimConfig::paper_defaults(ProtocolKind::Spms, 19);
        config.routing_mode = RoutingMode::Distributed;
        config.mobility = Some(MobilityConfig::new(SimTime::from_millis(50), 0.1).unwrap());
        config.failures = Some(FailureConfig::paper_defaults());
        config.churn = Some(ChurnConfig::new(SimTime::from_millis(80), 0.4).unwrap());
        config.incremental_zones = incremental_zones;
        config.horizon = SimTime::from_secs(2);
        let plan = traffic::all_to_all(25, 2, SimTime::from_millis(250), 19).unwrap();
        Simulation::run_with(config, topo, plan).unwrap()
    };
    let incremental = run(true);
    assert!(incremental.adversary.churn_epochs > 0, "churn must fire");
    assert!(
        incremental.routing.liveness_deltas > 0,
        "cohorts must queue"
    );
    let mut reference = run(false);
    reference.routing.zone_patches = incremental.routing.zone_patches;
    reference.routing.zone_rows_patched = incremental.routing.zone_rows_patched;
    assert_eq!(
        incremental, reference,
        "cohort churn diverged from all-pairs zone rebuilds"
    );
}

#[test]
fn deeper_originator_stacks_tolerate_more() {
    // §3.2: "Maintaining n entries for each destination enables the
    // protocol to tolerate concurrent failures of n intermediate nodes."
    let heavy = FailureConfig {
        mean_interarrival: SimTime::from_millis(15),
        ..FailureConfig::paper_defaults()
    };
    let topo = placement::grid(5, 5, 5.0).unwrap();
    let plan = traffic::all_to_all(25, 2, SimTime::from_millis(250), 9).unwrap();

    let mut shallow = SimConfig::paper_defaults(ProtocolKind::Spms, 9);
    shallow.failures = Some(heavy);
    shallow.scones_kept = 0;
    shallow.k_routes = 1;
    let mut deep = shallow.clone();
    deep.scones_kept = 2;
    deep.k_routes = 3;

    let m_shallow = Simulation::run_with(shallow, topo.clone(), plan.clone()).unwrap();
    let m_deep = Simulation::run_with(deep, topo, plan).unwrap();
    assert!(
        m_deep.delivery_ratio() >= m_shallow.delivery_ratio(),
        "deep {} vs shallow {}",
        m_deep.delivery_ratio(),
        m_shallow.delivery_ratio()
    );
}
