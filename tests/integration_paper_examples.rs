//! The paper's worked examples as executable scenarios.
//!
//! §3.3 walks through a three-node chain A(source)—B—C in the failure-free
//! case; §3.5 (Figure 2) walks through A—r1—r2—C with r2 failing before or
//! after advertising. These tests reproduce each step of those narratives
//! through the real engine.

use spms::{Generation, Interest, MetaId, ProtocolKind, SimConfig, Simulation, TrafficPlan};
use spms_kernel::SimTime;
use spms_net::{Field, NodeId, Point, Topology};
use spms_workloads::traffic::single_source;

/// A three-node chain with B exactly one minimum-power hop from A and C one
/// hop from B (the §3.3 topology: "The shortest route from A to C goes
/// through B").
fn chain3() -> Topology {
    Topology::new(
        vec![
            Point::new(0.0, 0.0),  // A (source)
            Point::new(5.0, 0.0),  // B
            Point::new(10.0, 0.0), // C
        ],
        Field::new(10.0, 5.0).unwrap(),
    )
    .unwrap()
}

/// The Figure 2 topology: A—r1—r2—C in a line, all zone neighbors of A.
fn chain4() -> Topology {
    Topology::new(
        vec![
            Point::new(0.0, 0.0),  // A (source)
            Point::new(5.0, 0.0),  // r1
            Point::new(10.0, 0.0), // r2
            Point::new(15.0, 0.0), // C
        ],
        Field::new(15.0, 5.0).unwrap(),
    )
    .unwrap()
}

fn one_item_plan(source: NodeId) -> TrafficPlan {
    TrafficPlan::new(
        vec![Generation {
            at: SimTime::ZERO,
            source,
            meta: MetaId::new(source, 0),
        }],
        Interest::AllNodes,
    )
    .unwrap()
}

#[test]
fn section_3_3_case_i_both_b_and_c_get_the_data() {
    // "Case I: Both nodes B and C need the data … C gets the data from B in
    // response to its request."
    let config = SimConfig::paper_defaults(ProtocolKind::Spms, 1);
    let m = Simulation::run_with(config, chain3(), one_item_plan(NodeId::new(0))).unwrap();
    assert_eq!(m.deliveries, 2);
    assert_eq!(m.delivery_ratio(), 1.0);
    // B requests directly; C requests from B after B's re-advertisement:
    // at least 2 REQ and 2 DATA unicasts, all at the minimum power level —
    // DATA energy must therefore be far below a SPIN run's.
    assert!(m.messages.req.value() >= 2);
    assert!(m.messages.data.value() >= 2);
    let spin = Simulation::run_with(
        SimConfig::paper_defaults(ProtocolKind::Spin, 1),
        chain3(),
        one_item_plan(NodeId::new(0)),
    )
    .unwrap();
    use spms_phy::EnergyCategory;
    assert!(
        m.energy.get(EnergyCategory::Data).value() < spin.energy.get(EnergyCategory::Data).value()
    );
}

#[test]
fn section_3_3_case_ii_relay_not_interested() {
    // "Case II: B does not request the data … C sends a REQ packet to A but
    // through the shortest route, i.e., routed through B."
    let source = NodeId::new(0);
    let meta = MetaId::new(source, 0);
    let mut interest = std::collections::BTreeMap::new();
    interest.insert(
        meta,
        std::collections::BTreeSet::from([NodeId::new(2)]), // only C wants it
    );
    let plan = TrafficPlan::new(
        vec![Generation {
            at: SimTime::ZERO,
            source,
            meta,
        }],
        Interest::PerMeta(interest),
    )
    .unwrap();
    let config = SimConfig::paper_defaults(ProtocolKind::Spms, 2);
    let m = Simulation::run_with(config, chain3(), plan).unwrap();
    assert_eq!(m.deliveries, 1, "C must still get the data");
    // The REQ is relayed by B (2 transmissions) and the DATA comes back
    // through B (2 transmissions).
    assert!(m.messages.req.value() >= 2);
    assert!(m.messages.data.value() >= 2);
}

#[test]
fn figure_2_failure_free_ripple() {
    // All of r1, r2, C request; the data ripples A → r1 → r2 → C.
    let config = SimConfig::paper_defaults(ProtocolKind::Spms, 3);
    let m = Simulation::run_with(config, chain4(), one_item_plan(NodeId::new(0))).unwrap();
    assert_eq!(m.deliveries, 3);
    // Everyone re-advertises once: 4 ADV broadcasts total.
    assert_eq!(m.messages.adv.value(), 4);
}

#[test]
fn figure_2_case_1_relay_fails_before_advertising() {
    // r2 fails before sending its ADV; C must fall back to requesting the
    // PRONE (r1) directly at higher power. We model this by keeping r2 down
    // for the whole run with a long repair and an immediate failure.
    // The failure schedule is driven by the seeded RNG; to make the test
    // deterministic we instead exercise the state machine at unit level in
    // the spms_proto module and here verify the end-to-end property: with
    // r2 permanently unavailable, C still gets the data.
    let topo = Topology::new(
        vec![
            Point::new(0.0, 0.0),
            Point::new(5.0, 0.0),
            Point::new(10.0, 0.0), // r2: isolated below
            Point::new(15.0, 0.0),
        ],
        Field::new(15.0, 5.0).unwrap(),
    )
    .unwrap();
    // Remove r2 from the interest set AND rely on τDAT failover: simulate
    // its "failure" by moving it out of everyone's zone before traffic.
    let mut topo_without_r2 = topo;
    topo_without_r2.move_node(NodeId::new(2), Point::new(15.0, 5.0));
    // C (node 3) is now 15 m from r1 and 15 m from A-to-C path relays; its
    // shortest path to r1 is direct (no relay in between at min power).
    let config = SimConfig::paper_defaults(ProtocolKind::Spms, 4);
    let m = Simulation::run_with(config, topo_without_r2, one_item_plan(NodeId::new(0))).unwrap();
    assert_eq!(m.delivery_ratio(), 1.0, "C recovers without r2");
}

#[test]
fn prone_scone_failover_delivers_under_forced_failure() {
    // End-to-end check of §3.4's tolerance claims with an aggressive
    // failure process over the Figure 2 chain: deliveries complete despite
    // repeated transient relay failures.
    let mut config = SimConfig::paper_defaults(ProtocolKind::Spms, 5);
    config.failures = Some(spms_net::FailureConfig {
        mean_interarrival: SimTime::from_millis(20),
        repair_min: SimTime::from_millis(5),
        repair_max: SimTime::from_millis(15),
    });
    let plan = single_source(NodeId::new(0), 5, SimTime::from_millis(400)).unwrap();
    let m = Simulation::run_with(config, chain4(), plan).unwrap();
    assert!(m.failures_injected > 0);
    assert!(
        m.delivery_ratio() > 0.85,
        "failover should recover most deliveries: {}",
        m.delivery_ratio()
    );
}

#[test]
fn delay_matches_analysis_ordering_for_adjacent_vs_distant() {
    // The §4.1 structure: an adjacent destination (B) completes faster than
    // a two-hop destination (C).
    let mut config = SimConfig::paper_defaults(ProtocolKind::Spms, 6);
    config.trace_capacity = Some(512);
    let sim = Simulation::new(config, chain3(), one_item_plan(NodeId::new(0))).unwrap();
    let m = sim.run();
    assert_eq!(m.deliveries, 2);
    // Min and max delivery delays correspond to B and C respectively.
    let fastest = m.delay_ms.min().unwrap();
    let slowest = m.delay_ms.max().unwrap();
    assert!(
        slowest > fastest,
        "C (two hops) must be slower than B (one hop)"
    );
}
