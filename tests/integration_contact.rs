//! Scheduled-connectivity integration suite: contact-plan window edges
//! and the full knob-matrix acceptance gate.
//!
//! Two layers, mirroring the mobility/churn suites:
//!
//! 1. **Window-edge invariance.** Zero-length windows, boundaries landing
//!    on the same timestamp as a mobility epoch flush, overlapping windows
//!    on one link, and plans whose first window opens at `t = 0` must all
//!    produce byte-identical `RunMetrics` between the incremental
//!    zone/DBF patch path and the all-pairs full-rebuild oracle, at
//!    `batch_epochs ∈ {1, 4}`.
//! 2. **Knob matrix.** A contact-driven run (scheduled flips layered on
//!    mobility) must be byte-identical between the incremental and
//!    full-rebuild oracles across every event kernel × table layout ×
//!    shard count combination — wall-clock knobs stay wall-clock even
//!    under scheduled connectivity.

use spms::{
    EventKernel, ProtocolKind, RoutingMode, RunMetrics, SimConfig, Simulation, TableLayout,
};
use spms_kernel::SimTime;
use spms_net::{placement, ContactPlan, MobilityConfig, NodeId};
use spms_workloads::traffic;

fn plan(text: &str) -> ContactPlan {
    ContactPlan::parse(text).expect("test plans are valid")
}

/// A distributed-routing config with mobility epochs every 400 ms — the
/// flush cadence the window-edge plans below deliberately collide with.
fn contact_config(seed: u64, text: &str) -> SimConfig {
    let mut config = SimConfig::paper_defaults(ProtocolKind::Spms, seed);
    config.routing_mode = RoutingMode::Distributed;
    config.mobility = Some(MobilityConfig::new(SimTime::from_millis(400), 0.1).unwrap());
    config.contact_plan = Some(plan(text));
    config
}

fn run(mut config: SimConfig, incremental: bool, batch_epochs: u32) -> RunMetrics {
    // `incremental_zones = false` is the all-pairs reference path; it must
    // be byte-inert. (`incremental_routing` is *not* flipped here — full
    // DBF rebuilds legitimately cost more routing bytes and pauses, which
    // feeds back into MAC contention; that knob is semantic by design.)
    config.incremental_zones = incremental;
    config.batch_epochs = batch_epochs;
    let topo = placement::grid(4, 4, 5.0).unwrap();
    let plan = traffic::all_to_all(16, 2, SimTime::from_millis(200), config.seed).unwrap();
    Simulation::run_with(config, topo, plan).unwrap()
}

/// Zero the counters that record *which* zone-maintenance path ran.
/// The incremental path reports how many rows it patched; the all-pairs
/// reference never patches. Everything observable — deliveries, delays,
/// energy, messages, routing traffic — must still match exactly.
fn scrub_path_accounting(mut m: RunMetrics) -> RunMetrics {
    m.routing.zone_patches = 0;
    m.routing.zone_rows_patched = 0;
    m
}

/// The four window-edge plans the incremental path must survive, each
/// byte-identical to the full-rebuild oracle at batch_epochs ∈ {1, 4}.
#[test]
fn contact_window_edges_match_the_full_rebuild_oracle() {
    let cases: &[(&str, &str)] = &[
        (
            "zero-length windows are validated no-ops",
            "0 1 0.2 0.2\n2 3 0.1 0.3\n5 6 0.45 0.45\n5 6 0.5 0.8\n",
        ),
        (
            "window boundaries on the mobility flush timestamp",
            // Mobility epochs fire at 0.4 s, 0.8 s, 1.2 s, …: one link
            // closes and another opens at exactly those instants.
            "5 6 0 0.4\n5 6 0.8 1.2\n9 10 0.4 0.9\n",
        ),
        (
            "overlapping windows on one link merge",
            "4 5 0.1 0.5\n4 5 0.3 0.7\n4 5 0.7 0.9\n9 10 0.2 0.6\n",
        ),
        (
            "first window opens at t = 0",
            "0 1 0 0.5\n6 7 0 0.25\n6 7 0.6 0.9\n",
        ),
    ];
    for (what, text) in cases {
        for batch_epochs in [1u32, 4] {
            let incremental = run(contact_config(19, text), true, batch_epochs);
            let reference = run(contact_config(19, text), false, batch_epochs);
            assert!(
                incremental.mobility_epochs > 0,
                "{what}: mobility must flush during the run"
            );
            assert!(
                incremental.routing.zone_patches > 0,
                "{what}: the incremental path must actually patch"
            );
            assert_eq!(
                scrub_path_accounting(incremental),
                scrub_path_accounting(reference),
                "{what} @ batch_epochs={batch_epochs}: incremental vs full rebuild"
            );
        }
    }
}

/// The acceptance matrix: a contact-driven run stays byte-identical
/// between the incremental and full-rebuild oracles across 3 kernels ×
/// 2 layouts × shards {1, auto, 16}.
#[test]
fn contact_runs_survive_the_full_knob_matrix() {
    let text = "5 6 0 0.4\n5 6 0.8 1.2\n9 10 0.3 0.9\n0 1 0.25 0.45\n";
    let mut baseline = None;
    for kernel in [
        EventKernel::Heap,
        EventKernel::Wheel,
        EventKernel::WheelBatched,
    ] {
        for layout in [TableLayout::Soa, TableLayout::Aos] {
            for shards in [1usize, 0, 16] {
                let configure = |incremental: bool| {
                    let mut config = contact_config(23, text);
                    config.event_kernel = kernel;
                    config.table_layout = layout;
                    config.dbf_shards = shards;
                    run(config, incremental, 1)
                };
                let incremental = configure(true);
                let reference = configure(false);
                assert_eq!(
                    scrub_path_accounting(incremental.clone()),
                    scrub_path_accounting(reference),
                    "{kernel}/{layout}/shards={shards}: incremental vs full rebuild"
                );
                match &baseline {
                    None => {
                        assert!(incremental.routing.contact_epochs > 0, "plan must fire");
                        baseline = Some(incremental);
                    }
                    Some(base) => assert_eq!(
                        &incremental, base,
                        "{kernel}/{layout}/shards={shards}: knobs must stay wall-clock-only"
                    ),
                }
            }
        }
    }
}

/// The inter-regional scenario: a SPMS-IZ pipeline whose middle is a
/// scheduled contact. With the contact up at generation time the
/// bordercast pull crosses regions; severed, nothing does — and both
/// regimes stay byte-identical between the incremental and full-rebuild
/// paths.
#[test]
fn interregional_contact_gates_the_interzone_pull() {
    let len = 9usize;
    let horizon = SimTime::from_secs(120);
    let run = |duty: f64, incremental: bool| {
        let plan = spms_workloads::interregional(len, 4, SimTime::from_secs(40), duty, horizon)
            .expect("valid inter-regional plan");
        let mut config = SimConfig::paper_defaults(ProtocolKind::SpmsIz, 29);
        config.zone_radius_m = 20.0;
        config.horizon = horizon;
        config.contact_plan = Some(plan);
        config.incremental_zones = incremental;
        let sink = NodeId::new(len as u32 - 1);
        let traffic = traffic::pipeline(NodeId::new(0), &[sink], 2, SimTime::from_millis(400))
            .expect("valid pipeline workload");
        let topo = placement::grid(len, 1, 5.0).expect("valid line");
        Simulation::run_with(config, topo, traffic).unwrap()
    };
    // Contact up while the items are born: the pull crosses the cut.
    let open = run(1.0, true);
    assert!(
        open.deliveries > 0,
        "open contact must deliver across regions"
    );
    assert_eq!(open, run(1.0, false), "open: incremental vs full rebuild");
    // Contact severed for the whole run: nothing crosses.
    let severed = run(0.0, true);
    assert_eq!(severed.deliveries, 0, "severed contact must block the pull");
    assert_eq!(
        severed,
        run(0.0, false),
        "severed: incremental vs full rebuild"
    );
}

/// The process-wide `--contact-plan` override fills only specs that left
/// `SimConfig::contact_plan` unset — run in this separate test process so
/// the global override cannot race the in-crate unit sweeps.
#[test]
fn contact_plan_override_fills_only_unset_slots() {
    use spms_workloads::{default_contact_plan, run_specs, set_default_contact_plan, RunSpec};
    let topo = placement::grid(2, 1, 5.0).unwrap();
    let traffic = traffic::single_source(NodeId::new(0), 1, SimTime::ZERO).unwrap();
    let spec = |label: &str, pinned: Option<ContactPlan>| {
        let mut config = SimConfig::paper_defaults(ProtocolKind::Flooding, 7);
        config.contact_plan = pinned;
        RunSpec {
            label: label.into(),
            config,
            topology: topo.clone(),
            plan: traffic.clone(),
        }
    };
    // A plan that severs the only link for the whole run.
    let severed = plan("0 1 500 600\n");
    // Baseline: no override, the 2-node run delivers.
    assert_eq!(default_contact_plan(), None);
    let open = run_specs(vec![spec("open", None)]);
    assert_eq!(open[0].1.deliveries, 1);
    // The override gates every spec that left the slot unset…
    set_default_contact_plan(Some(severed.clone()));
    assert_eq!(default_contact_plan(), Some(severed));
    let gated = run_specs(vec![spec("gated", None)]);
    assert_eq!(gated[0].1.deliveries, 0, "override must gate unset specs");
    assert!(gated[0].1.routing.contact_epochs > 0);
    // …but a spec that pins its own plan is immune (EXT6's guarantee).
    let pinned = run_specs(vec![spec("pinned", Some(ContactPlan::default()))]);
    assert_eq!(pinned[0].1.deliveries, 1, "pinned specs must be immune");
    set_default_contact_plan(None);
    assert_eq!(default_contact_plan(), None);
}
