//! Engine edge cases: configurations and topologies at the boundaries of
//! the model's validity.

use spms::{
    Generation, Interest, MetaId, ProtocolKind, SimConfig, Simulation, TimeoutPolicy, TrafficPlan,
};
use spms_kernel::SimTime;
use spms_net::{placement, Field, NodeId, Point, Topology};
use spms_workloads::traffic;

fn one_item(source: NodeId) -> TrafficPlan {
    TrafficPlan::new(
        vec![Generation {
            at: SimTime::ZERO,
            source,
            meta: MetaId::new(source, 0),
        }],
        Interest::AllNodes,
    )
    .unwrap()
}

#[test]
fn single_node_network_has_nothing_to_do() {
    let topo = placement::grid(1, 1, 5.0).unwrap();
    let m = Simulation::run_with(
        SimConfig::paper_defaults(ProtocolKind::Spms, 1),
        topo,
        one_item(NodeId::new(0)),
    )
    .unwrap();
    assert_eq!(m.deliveries_expected, 0);
    assert_eq!(m.deliveries, 0);
    // The source still advertises into the void.
    assert_eq!(m.messages.adv.value(), 1);
}

#[test]
fn partitioned_network_delivers_only_within_the_partition() {
    // Two pairs 200 m apart: beyond the radio's absolute reach.
    let topo = Topology::new(
        vec![
            Point::new(0.0, 0.0),
            Point::new(5.0, 0.0),
            Point::new(205.0, 0.0),
            Point::new(210.0, 0.0),
        ],
        Field::new(210.0, 5.0).unwrap(),
    )
    .unwrap();
    let mut config = SimConfig::paper_defaults(ProtocolKind::Spms, 2);
    config.horizon = SimTime::from_secs(5);
    let m = Simulation::run_with(config, topo, one_item(NodeId::new(0))).unwrap();
    // Expected counts all 3 non-sources, but only the partition-mate can
    // actually receive.
    assert_eq!(m.deliveries_expected, 3);
    assert_eq!(m.deliveries, 1);
    assert!(m.delivery_ratio() < 1.0);
}

#[test]
fn zero_generation_plan_terminates_immediately() {
    let topo = placement::grid(3, 3, 5.0).unwrap();
    let plan = TrafficPlan::new(vec![], Interest::AllNodes).unwrap();
    let m =
        Simulation::run_with(SimConfig::paper_defaults(ProtocolKind::Spms, 3), topo, plan).unwrap();
    assert_eq!(m.packets_generated, 0);
    assert_eq!(m.energy.total().value(), 0.0);
    assert_eq!(m.events_processed, 0);
}

#[test]
fn table1_fixed_timeouts_still_deliver() {
    // The paper's literal 1.0/2.5 ms timers fire spuriously under the
    // G·n² MAC, producing retries and duplicates — but the protocol must
    // remain live and deliver everything.
    let topo = placement::grid(4, 4, 5.0).unwrap();
    let mut config = SimConfig::paper_defaults(ProtocolKind::Spms, 4);
    config.timeout_policy = TimeoutPolicy::table1();
    let plan = traffic::all_to_all(16, 1, SimTime::from_millis(300), 4).unwrap();
    let m = Simulation::run_with(config, topo, plan).unwrap();
    assert_eq!(m.delivery_ratio(), 1.0);
    // Spurious τDAT expiries show up as extra REQs relative to the
    // adaptive policy.
    assert!(m.messages.req.value() >= m.deliveries);
}

#[test]
fn horizon_cuts_a_run_short_cleanly() {
    let topo = placement::grid(5, 5, 5.0).unwrap();
    let mut config = SimConfig::paper_defaults(ProtocolKind::Spin, 5);
    config.horizon = SimTime::from_millis(5); // far too short to finish
    let m = Simulation::run_with(config, topo, one_item(NodeId::new(12))).unwrap();
    // The item was generated (at t = 0) but dissemination was cut off.
    assert_eq!(m.deliveries_expected, 24);
    assert!(m.deliveries < m.deliveries_expected);
    assert!(m.finished_at <= SimTime::from_millis(5));
}

#[test]
fn min_radius_degenerates_spms_to_spin_behavior() {
    // At a 5 m radius (one power level), multi-hop routing is impossible:
    // both protocols make the same direct exchanges, so their energy
    // agrees to within the stochastic backoff noise.
    let topo = placement::grid(4, 4, 5.0).unwrap();
    let run = |protocol| {
        let mut config = SimConfig::paper_defaults(protocol, 6);
        config.zone_radius_m = 5.0;
        let plan = traffic::all_to_all(16, 1, SimTime::from_millis(300), 6).unwrap();
        Simulation::run_with(config, topo.clone(), plan).unwrap()
    };
    let spms = run(ProtocolKind::Spms);
    let spin = run(ProtocolKind::Spin);
    assert_eq!(spms.deliveries, spin.deliveries);
    let ratio = spms.energy.total().value() / spin.energy.total().value();
    assert!(
        (0.95..1.05).contains(&ratio),
        "protocols should coincide at one power level: ratio {ratio}"
    );
}

#[test]
fn idle_listening_penalizes_the_slower_protocol_more() {
    let topo = placement::grid(4, 4, 5.0).unwrap();
    let run = |protocol| {
        let mut config = SimConfig::paper_defaults(protocol, 7);
        config.idle_listening_mw = Some(0.0125);
        let plan = traffic::all_to_all(16, 1, SimTime::from_millis(300), 7).unwrap();
        Simulation::run_with(config, topo.clone(), plan).unwrap()
    };
    let spms = run(ProtocolKind::Spms);
    let spin = run(ProtocolKind::Spin);
    use spms_phy::EnergyCategory;
    // SPIN finishes later ⇒ pays at least as much idle energy.
    assert!(
        spin.energy.get(EnergyCategory::Idle).value()
            >= spms.energy.get(EnergyCategory::Idle).value()
    );
    // And the savings ratio is compressed relative to protocol-only
    // accounting.
    let with_idle = 1.0 - spms.energy_per_packet_uj() / spin.energy_per_packet_uj();
    let proto_only = {
        let s = spms.energy.tx_total().value() + spms.energy.get(EnergyCategory::Receive).value();
        let p = spin.energy.tx_total().value() + spin.energy.get(EnergyCategory::Receive).value();
        1.0 - s / p
    };
    assert!(with_idle < proto_only, "{with_idle} vs {proto_only}");
}

#[test]
fn spin_bc_end_to_end_serves_whole_zone_with_one_broadcast() {
    let topo = placement::grid(3, 3, 5.0).unwrap();
    let mut config = SimConfig::paper_defaults(ProtocolKind::Spin, 8);
    config.spin_broadcast_data = true;
    let m = Simulation::run_with(config, topo, one_item(NodeId::new(4))).unwrap();
    assert_eq!(m.deliveries, 8);
    // One broadcast from the source covers its whole zone (the 3×3 grid);
    // re-advertisement by receivers triggers no further REQ/DATA cycles
    // since everyone already holds the item.
    assert_eq!(m.messages.data.value(), 1);
}
