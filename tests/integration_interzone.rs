//! End-to-end tests of the §6 inter-zone extension (SPMS-IZ): data crossing
//! zones whose intermediate nodes are not interested, which base SPMS, SPIN
//! and the paper's flooding strawman cannot all do.

use std::collections::{BTreeMap, BTreeSet};

use spms::{
    Generation, Interest, MetaId, ProtocolKind, RunMetrics, SimConfig, Simulation, TrafficPlan,
};
use spms_kernel::SimTime;
use spms_net::{placement, NodeId, Topology};

/// A long thin field: 25×1 line, 5 m spacing (120 m end to end), 20 m
/// zones — roughly six zone diameters. Source at node 0, sink at node 24,
/// nothing in between is interested.
fn pipeline_topology() -> Topology {
    placement::grid(25, 1, 5.0).unwrap()
}

fn pipeline_plan(sinks: &[u32]) -> TrafficPlan {
    let source = NodeId::new(0);
    let meta = MetaId::new(source, 0);
    let mut map = BTreeMap::new();
    map.insert(
        meta,
        sinks
            .iter()
            .map(|&s| NodeId::new(s))
            .collect::<BTreeSet<_>>(),
    );
    TrafficPlan::new(
        vec![Generation {
            at: SimTime::ZERO,
            source,
            meta,
        }],
        Interest::PerMeta(map),
    )
    .unwrap()
}

fn run_pipeline(protocol: ProtocolKind, sinks: &[u32], seed: u64) -> RunMetrics {
    let mut config = SimConfig::paper_defaults(protocol, seed);
    config.horizon = SimTime::from_secs(60);
    Simulation::run_with(config, pipeline_topology(), pipeline_plan(sinks)).unwrap()
}

#[test]
fn spms_iz_delivers_across_uninterested_zones() {
    let m = run_pipeline(ProtocolKind::SpmsIz, &[24], 1);
    assert_eq!(m.deliveries_expected, 1);
    assert_eq!(m.deliveries, 1, "far sink must receive the item");
    assert_eq!(m.delivery_ratio(), 1.0);
}

#[test]
fn base_spms_cannot_cross_uninterested_zones() {
    // The motivating gap: base SPMS ripples only through *interested*
    // re-advertisers, so a sink 120 m away with an idle middle never hears
    // about the data.
    let m = run_pipeline(ProtocolKind::Spms, &[24], 1);
    assert_eq!(m.deliveries, 0, "base SPMS has no inter-zone path");
}

#[test]
fn spin_cannot_cross_uninterested_zones_either() {
    let m = run_pipeline(ProtocolKind::Spin, &[24], 1);
    assert_eq!(m.deliveries, 0, "SPIN relays only via interested nodes");
}

#[test]
fn spms_iz_matches_base_spms_when_everyone_is_interested() {
    // With interest everywhere the bordercast is pure overhead; deliveries
    // must still be complete and energy within a modest factor of base.
    let topo = placement::grid(9, 1, 5.0).unwrap();
    let source = NodeId::new(4);
    let meta = MetaId::new(source, 0);
    let plan = TrafficPlan::new(
        vec![Generation {
            at: SimTime::ZERO,
            source,
            meta,
        }],
        Interest::AllNodes,
    )
    .unwrap();
    let mut cfg_iz = SimConfig::paper_defaults(ProtocolKind::SpmsIz, 5);
    cfg_iz.horizon = SimTime::from_secs(60);
    let iz = Simulation::run_with(cfg_iz, topo.clone(), plan.clone()).unwrap();
    let mut cfg_base = SimConfig::paper_defaults(ProtocolKind::Spms, 5);
    cfg_base.horizon = SimTime::from_secs(60);
    let base = Simulation::run_with(cfg_base, topo, plan).unwrap();
    assert_eq!(iz.deliveries, iz.deliveries_expected);
    assert_eq!(base.deliveries, base.deliveries_expected);
    let ratio = iz.energy.total().value() / base.energy.total().value();
    assert!(
        (1.0..2.0).contains(&ratio),
        "IZ overhead should be bounded: ratio {ratio}"
    );
}

#[test]
fn multiple_remote_sinks_are_all_served() {
    let m = run_pipeline(ProtocolKind::SpmsIz, &[20, 22, 24], 3);
    assert_eq!(m.deliveries_expected, 3);
    assert_eq!(m.deliveries, 3);
}

#[test]
fn sink_in_source_zone_still_uses_fast_path() {
    // A sink 15 m away (inside the source's zone) must be served by the
    // ordinary intra-zone negotiation even under SPMS-IZ.
    let m = run_pipeline(ProtocolKind::SpmsIz, &[3], 2);
    assert_eq!(m.deliveries, 1);
    // No inter-zone REQ was needed: request count stays small.
    assert!(
        m.messages.req.value() <= 4,
        "intra-zone sink needed {} REQs",
        m.messages.req.value()
    );
}

#[test]
fn relay_caching_seeds_intermediate_zones() {
    // With caching on, the DATA's journey leaves copies at relays; a second
    // sink requesting later should be served locally. Compare REQ loads.
    let sinks = [24u32, 23, 22, 21, 20];
    let mut cached_cfg = SimConfig::paper_defaults(ProtocolKind::SpmsIz, 9);
    cached_cfg.relay_caching = true;
    cached_cfg.serve_from_cache = true;
    cached_cfg.horizon = SimTime::from_secs(60);
    let cached =
        Simulation::run_with(cached_cfg, pipeline_topology(), pipeline_plan(&sinks)).unwrap();
    let plain = run_pipeline(ProtocolKind::SpmsIz, &sinks, 9);
    assert_eq!(cached.deliveries, 5);
    assert_eq!(plain.deliveries, 5);
    // Caching trades extra zone-wide ADVs (each cached relay advertises)
    // for shorter REQ/DATA journeys; the transfer energy itself must drop.
    let transfer = |m: &RunMetrics| {
        use spms_phy::EnergyCategory;
        m.energy.get(EnergyCategory::Req).value() + m.energy.get(EnergyCategory::Data).value()
    };
    assert!(
        transfer(&cached) < transfer(&plain),
        "cached transfer energy {} vs plain {}",
        transfer(&cached),
        transfer(&plain)
    );
}

#[test]
fn explicit_ttl_limits_reach() {
    // TTL 1 lets the query travel one zone hop: a 120 m sink stays unserved,
    // a ~35 m sink (one relay) is reachable.
    let mut config = SimConfig::paper_defaults(ProtocolKind::SpmsIz, 4);
    config.interzone.ttl = Some(1);
    config.horizon = SimTime::from_secs(60);
    let far =
        Simulation::run_with(config.clone(), pipeline_topology(), pipeline_plan(&[24])).unwrap();
    assert_eq!(far.deliveries, 0, "TTL 1 cannot reach six zones out");
    let near = Simulation::run_with(config, pipeline_topology(), pipeline_plan(&[7])).unwrap();
    assert_eq!(near.deliveries, 1, "TTL 1 reaches the adjacent zone");
}

#[test]
fn transient_failures_delay_but_do_not_stop_interzone_delivery() {
    let mut config = SimConfig::paper_defaults(ProtocolKind::SpmsIz, 11);
    config.failures = Some(spms_net::FailureConfig {
        mean_interarrival: SimTime::from_millis(50),
        repair_min: SimTime::from_millis(5),
        repair_max: SimTime::from_millis(15),
    });
    config.max_attempts = 8;
    config.horizon = SimTime::from_secs(120);
    let mut delivered = 0;
    for seed in [11, 12, 13, 14] {
        let mut c = config.clone();
        c.seed = seed;
        let m = Simulation::run_with(c, pipeline_topology(), pipeline_plan(&[24])).unwrap();
        assert!(m.failures_injected > 0, "seed {seed} injected no failures");
        delivered += m.deliveries;
    }
    assert!(
        delivered >= 3,
        "inter-zone retries should usually survive transient failures: {delivered}/4"
    );
}

#[test]
fn interzone_runs_are_deterministic() {
    let a = run_pipeline(ProtocolKind::SpmsIz, &[24], 21);
    let b = run_pipeline(ProtocolKind::SpmsIz, &[24], 21);
    assert_eq!(a, b);
}

#[test]
fn auto_ttl_covers_a_2d_field() {
    // 9×9 grid at 10 m spacing (80 m square), sink in the far corner.
    let topo = placement::grid(9, 9, 10.0).unwrap();
    let source = NodeId::new(0);
    let meta = MetaId::new(source, 0);
    let mut map = BTreeMap::new();
    map.insert(meta, BTreeSet::from([NodeId::new(80)]));
    let plan = TrafficPlan::new(
        vec![Generation {
            at: SimTime::ZERO,
            source,
            meta,
        }],
        Interest::PerMeta(map),
    )
    .unwrap();
    let mut config = SimConfig::paper_defaults(ProtocolKind::SpmsIz, 6);
    config.horizon = SimTime::from_secs(60);
    let m = Simulation::run_with(config, topo, plan).unwrap();
    assert_eq!(m.deliveries, 1, "diagonal corner must be served");
}

#[test]
fn analytic_model_brackets_the_measured_flood_iz_ratio() {
    // The spms-analysis closed form (MICA2 instance) should land within a
    // factor ~1.5 of the simulated E_flood/E_iz ratio and share its
    // downward trend with pipeline length.
    use spms_analysis::InterZoneModel;
    let model = InterZoneModel::mica2_instance();
    let mut last_measured = f64::INFINITY;
    for &len in &[9usize, 17, 25] {
        let sinks = [len as u32 - 1];
        let mut iz_cfg = SimConfig::paper_defaults(ProtocolKind::SpmsIz, 5);
        iz_cfg.horizon = SimTime::from_secs(60);
        let topo = placement::grid(len, 1, 5.0).unwrap();
        let iz =
            Simulation::run_with(iz_cfg, topo.clone(), pipeline_plan_for(len, &sinks)).unwrap();
        let mut fl_cfg = SimConfig::paper_defaults(ProtocolKind::Flooding, 5);
        fl_cfg.horizon = SimTime::from_secs(60);
        let fl = Simulation::run_with(fl_cfg, topo, pipeline_plan_for(len, &sinks)).unwrap();
        assert_eq!(iz.deliveries, 1);
        assert_eq!(fl.deliveries, 1);
        let measured = fl.energy.total().value() / iz.energy.total().value();
        let predicted = model.ratio(len as u32);
        let rel = measured / predicted;
        assert!(
            (0.6..1.7).contains(&rel),
            "len {len}: measured {measured:.2} vs predicted {predicted:.2}"
        );
        assert!(measured <= last_measured + 0.8, "trend at len {len}");
        last_measured = measured;
    }
}

fn pipeline_plan_for(len: usize, sinks: &[u32]) -> TrafficPlan {
    let source = NodeId::new(0);
    let meta = MetaId::new(source, 0);
    let mut map = BTreeMap::new();
    map.insert(
        meta,
        sinks
            .iter()
            .map(|&s| NodeId::new(s))
            .collect::<BTreeSet<_>>(),
    );
    let _ = len;
    TrafficPlan::new(
        vec![Generation {
            at: SimTime::ZERO,
            source,
            meta,
        }],
        Interest::PerMeta(map),
    )
    .unwrap()
}

#[test]
fn unreachable_sink_abandons_instead_of_hanging() {
    // Two clusters 300 m apart — beyond any radio reach. The run must end
    // (no livelock) with the sink's item accounted as undeliverable.
    let positions: Vec<spms_net::Point> = (0..5)
        .map(|i| spms_net::Point::new(5.0 * f64::from(i), 0.0))
        .chain((0..5).map(|i| spms_net::Point::new(300.0 + 5.0 * f64::from(i), 0.0)))
        .collect();
    let topo =
        spms_net::Topology::new(positions, spms_net::Field::new(330.0, 10.0).unwrap()).unwrap();
    let mut config = SimConfig::paper_defaults(ProtocolKind::SpmsIz, 3);
    config.horizon = SimTime::from_secs(30);
    let source = NodeId::new(0);
    let meta = MetaId::new(source, 0);
    let mut map = BTreeMap::new();
    map.insert(meta, BTreeSet::from([NodeId::new(9)]));
    let plan = TrafficPlan::new(
        vec![Generation {
            at: SimTime::ZERO,
            source,
            meta,
        }],
        Interest::PerMeta(map),
    )
    .unwrap();
    let m = Simulation::run_with(config, topo, plan).unwrap();
    assert_eq!(m.deliveries, 0);
    assert!(
        m.finished_at < SimTime::from_secs(30),
        "run must settle before the horizon, ended at {}",
        m.finished_at
    );
}

#[test]
fn interzone_works_with_distributed_routing() {
    // SPMS-IZ on top of the real DBF message exchange (not the oracle):
    // routing energy is charged and the far sink is still served.
    let mut config = SimConfig::paper_defaults(ProtocolKind::SpmsIz, 7);
    config.routing_mode = spms::RoutingMode::Distributed;
    config.horizon = SimTime::from_secs(120);
    let m = Simulation::run_with(config, pipeline_topology(), pipeline_plan(&[24])).unwrap();
    assert_eq!(m.deliveries, 1);
    assert!(m.routing.messages > 0, "DBF must have run");
    assert!(
        m.energy.get(spms_phy::EnergyCategory::Routing).value() > 0.0,
        "routing energy must be charged"
    );
}

#[test]
fn interzone_survives_mobility_epochs() {
    // Nodes move mid-run; zones and routing rebuild, the relay dedup
    // clears, and the (re-paced) pulls still complete for most seeds.
    let mut delivered = 0u64;
    let mut expected = 0u64;
    let mut epochs = 0u64;
    for seed in [31u64, 32, 33, 34] {
        let mut config = SimConfig::paper_defaults(ProtocolKind::SpmsIz, seed);
        config.routing_mode = spms::RoutingMode::Distributed;
        config.mobility = Some(spms_net::MobilityConfig {
            interval: SimTime::from_millis(200),
            fraction: 0.1,
        });
        config.max_attempts = 8;
        config.horizon = SimTime::from_secs(60);
        let m = Simulation::run_with(config, pipeline_topology(), pipeline_plan(&[20])).unwrap();
        delivered += m.deliveries;
        expected += m.deliveries_expected;
        epochs += m.mobility_epochs;
    }
    assert!(epochs > 0, "mobility must actually fire");
    assert!(
        delivered * 2 >= expected,
        "mobility should not collapse delivery: {delivered}/{expected}"
    );
}

#[test]
fn bordercast_is_cheaper_than_flooding() {
    // Flooding also reaches the far sink, but pushes the 40 B DATA through
    // every node; the bordercast moves 2 B queries and one pulled DATA.
    let iz = run_pipeline(ProtocolKind::SpmsIz, &[24], 8);
    let flood = run_pipeline(ProtocolKind::Flooding, &[24], 8);
    assert_eq!(iz.deliveries, 1);
    assert_eq!(flood.deliveries, 1);
    assert!(
        iz.energy.total().value() < flood.energy.total().value(),
        "IZ {} vs flooding {}",
        iz.energy.total(),
        flood.energy.total()
    );
}
