//! Mobility integration tests: §5.1.3 — epochs relocate nodes, routing
//! re-converges (charged to SPMS), and data transmission resumes.

use spms::{ProtocolKind, RoutingMode, SimConfig, Simulation};
use spms_kernel::SimTime;
use spms_net::{placement, MobilityConfig};
use spms_phy::EnergyCategory;
use spms_workloads::traffic;

fn mobile_config(protocol: ProtocolKind, seed: u64, interval_ms: u64) -> SimConfig {
    let mut config = SimConfig::paper_defaults(protocol, seed);
    config.mobility = Some(MobilityConfig::new(SimTime::from_millis(interval_ms), 0.1).unwrap());
    if protocol == ProtocolKind::Spms {
        config.routing_mode = RoutingMode::Distributed;
    }
    config
}

fn run(protocol: ProtocolKind, seed: u64, interval_ms: u64) -> spms::RunMetrics {
    let topo = placement::grid(5, 5, 5.0).unwrap();
    let plan = traffic::all_to_all(25, 2, SimTime::from_millis(200), seed).unwrap();
    Simulation::run_with(mobile_config(protocol, seed, interval_ms), topo, plan).unwrap()
}

#[test]
fn epochs_fire_and_routing_reexecutes() {
    let m = run(ProtocolKind::Spms, 1, 500);
    assert!(m.mobility_epochs > 0, "mobility must occur");
    // Initial DBF + one re-execution per epoch.
    assert_eq!(m.routing.executions, 1 + m.mobility_epochs);
    assert!(m.routing.converge_time > SimTime::ZERO);
    assert!(m.energy.get(EnergyCategory::Routing).value() > 0.0);
}

#[test]
fn delivery_survives_relocation() {
    let m = run(ProtocolKind::Spms, 2, 400);
    assert!(
        m.delivery_ratio() > 0.9,
        "mobility should not break dissemination: {}",
        m.delivery_ratio()
    );
}

#[test]
fn spin_is_unaffected_by_routing_costs() {
    let m = run(ProtocolKind::Spin, 3, 400);
    assert!(m.mobility_epochs > 0);
    assert_eq!(m.routing.executions, 0);
    assert_eq!(m.energy.get(EnergyCategory::Routing).value(), 0.0);
}

#[test]
fn more_frequent_mobility_costs_spms_more_routing_energy() {
    let seldom = run(ProtocolKind::Spms, 4, 1000);
    let often = run(ProtocolKind::Spms, 4, 150);
    assert!(often.mobility_epochs > seldom.mobility_epochs);
    assert!(
        often.energy.get(EnergyCategory::Routing).value()
            > seldom.energy.get(EnergyCategory::Routing).value()
    );
}

#[test]
fn breakeven_direction_holds_in_simulation() {
    // §5.1.3: with enough packets between epochs SPMS still beats SPIN;
    // the erosion is visible as a shrinking gap when epochs are frequent.
    let spin = run(ProtocolKind::Spin, 5, 400);
    let spms = run(ProtocolKind::Spms, 5, 400);
    let spms_fast = run(ProtocolKind::Spms, 5, 150);
    let savings_slow = 1.0 - spms.energy_per_packet_uj() / spin.energy_per_packet_uj();
    let spin_fast = run(ProtocolKind::Spin, 5, 150);
    let savings_fast = 1.0 - spms_fast.energy_per_packet_uj() / spin_fast.energy_per_packet_uj();
    assert!(
        savings_fast < savings_slow,
        "more mobility must erode savings: fast {savings_fast:.3} vs slow {savings_slow:.3}"
    );
}

#[test]
fn mobility_runs_are_deterministic() {
    let a = run(ProtocolKind::Spms, 6, 300);
    let b = run(ProtocolKind::Spms, 6, 300);
    assert_eq!(a, b);
}
