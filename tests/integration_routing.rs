//! Routing-layer integration: the distributed Bellman-Ford agrees with the
//! centralized oracle on real topologies, and its cost scales the way §3.2
//! argues.

use spms_kernel::SimRng;
use spms_net::{dijkstra, placement, NodeId, ZoneTable};
use spms_phy::RadioProfile;
use spms_routing::{oracle_tables, DbfEngine};

fn zones_for(cols: usize, rows: usize, radius: f64) -> ZoneTable {
    let topo = placement::grid(cols, rows, 5.0).unwrap();
    ZoneTable::build(&topo, &RadioProfile::mica2(), radius)
}

#[test]
fn dbf_matches_oracle_on_the_reference_grid() {
    let zones = zones_for(7, 7, 20.0);
    let mut dbf = DbfEngine::new(&zones, 2);
    dbf.run_to_convergence(&zones);
    let oracle = oracle_tables(&zones, 2);
    for (i, table) in oracle.iter().enumerate() {
        let node = NodeId::new(i as u32);
        for dest in table.destinations() {
            let want = table.best(dest).unwrap();
            let got = dbf
                .table(node)
                .best(dest)
                .unwrap_or_else(|| panic!("{node} lost route to {dest}"));
            assert_eq!(got.via, want.via, "{node}→{dest}");
            assert!((got.cost - want.cost).abs() < 1e-9);
        }
    }
}

#[test]
fn dbf_matches_oracle_on_random_topologies() {
    for seed in 0..5u64 {
        let mut rng = SimRng::new(seed);
        let topo = placement::uniform_random(40, 5.0, &mut rng).unwrap();
        let zones = ZoneTable::build(&topo, &RadioProfile::mica2(), 20.0);
        let mut dbf = DbfEngine::new(&zones, 2);
        dbf.run_to_convergence(&zones);
        let oracle = oracle_tables(&zones, 2);
        for (i, table) in oracle.iter().enumerate() {
            let node = NodeId::new(i as u32);
            let want: Vec<NodeId> = table.destinations().collect();
            let got: Vec<NodeId> = dbf.table(node).destinations().collect();
            assert_eq!(want, got, "seed {seed}, node {node}: destination sets");
            for dest in want {
                let a = table.best(dest).unwrap();
                let b = dbf.table(node).best(dest).unwrap();
                assert!((a.cost - b.cost).abs() < 1e-9, "seed {seed}: {node}→{dest}");
            }
        }
    }
}

#[test]
fn convergence_cost_grows_with_zone_size() {
    // §3.2: "as the transmission radius increases … the overhead of the
    // Bellman-Ford algorithm increases."
    let small = zones_for(9, 9, 10.0);
    let large = zones_for(9, 9, 25.0);
    let mut dbf_s = DbfEngine::new(&small, 2);
    let mut dbf_l = DbfEngine::new(&large, 2);
    let cost_s = dbf_s.run_to_convergence(&small);
    let cost_l = dbf_l.run_to_convergence(&large);
    assert!(cost_l.bytes_total > cost_s.bytes_total);
    assert!(cost_l.entries_sent > cost_s.entries_sent);
}

#[test]
fn next_hop_graph_toward_any_destination_is_loop_free() {
    // Following best-route next hops toward a destination must terminate —
    // the property SPMS forwarding relies on.
    let zones = zones_for(6, 6, 20.0);
    let tables = oracle_tables(&zones, 2);
    for dest_idx in 0..zones.len() {
        let dest = NodeId::new(dest_idx as u32);
        for start_idx in 0..zones.len() {
            let mut cur = NodeId::new(start_idx as u32);
            let mut hops = 0;
            while cur != dest {
                let Some(route) = tables[cur.index()].best(dest) else {
                    break; // out of zone: no route expected
                };
                cur = route.via;
                hops += 1;
                assert!(hops <= zones.len(), "loop toward {dest} from {start_idx}");
            }
        }
    }
}

#[test]
fn shortest_paths_prefer_minimum_power_chains() {
    // On the grid, the cheapest route between distant zone members uses
    // 5 m (minimum-power) hops exclusively.
    let zones = zones_for(5, 1, 20.0);
    let dist = dijkstra(&zones, NodeId::new(0));
    let pc = dist[4].unwrap();
    let min_power = RadioProfile::mica2().power_mw(RadioProfile::mica2().min_power_level());
    assert!((pc.cost - 4.0 * min_power).abs() < 1e-12);
}

#[test]
fn masked_reruns_reflect_failed_relays() {
    let zones = zones_for(5, 1, 20.0);
    let mut alive = vec![true; 5];
    alive[2] = false; // the middle relay is down
    let mut dbf = DbfEngine::new(&zones, 2);
    dbf.reset(&zones, &alive);
    dbf.run_to_convergence_masked(&zones, &alive);
    // Node 0 still reaches node 4 (20 m apart: direct at max level) but no
    // route may pass through the dead node 2.
    let best = dbf.table(NodeId::new(0)).best(NodeId::new(4)).unwrap();
    let mut cur = NodeId::new(0);
    let mut path = vec![cur];
    while cur != NodeId::new(4) {
        cur = dbf.table(cur).best(NodeId::new(4)).unwrap().via;
        path.push(cur);
        assert!(path.len() <= 6);
    }
    assert!(
        !path.contains(&NodeId::new(2)),
        "path {path:?} uses the dead relay"
    );
    assert!(best.cost > 0.0);
}
