//! Adversarial-behavior and heavy-churn robustness suite.
//!
//! Three layers, mirroring the guarantees ISSUE 8 adds to DESIGN.md:
//!
//! 1. **Knob matrix** — adversary/churn are *semantic* knobs (they change
//!    results like a seed does), but under any fixed adversarial setting
//!    the wall-clock knobs (event kernel, table layout, DBF shards, sweep
//!    workers) still cannot change a single byte of [`spms::RunMetrics`],
//!    including the new [`spms::AdversaryStats`] counters.
//! 2. **Seeded proptest fuzzer** — random adversary/churn schedules drive
//!    the incremental zone engine against the full-rebuild oracle: runs
//!    with `incremental_zones` on and off must agree on every metric
//!    except the zone-patch accounting itself.
//! 3. **Minimized fuzz corpus** — fixed schedules distilled from the
//!    fuzzer, each pinned to a distinct delta-path branch (coalesced
//!    windows, full-cohort leave/rejoin, dormant-then-active liars,
//!    flooding storms under sharded relaxation).

use proptest::prelude::*;

use spms::{
    AdversaryConfig, EventKernel, NodeBehavior, ProtocolKind, RoutingMode, RunMetrics, SimConfig,
    Simulation, TableLayout,
};
use spms_kernel::SimTime;
use spms_net::{placement, ChurnConfig, FailureConfig, MobilityConfig};
use spms_workloads::traffic;

/// A full-featured adversarial run: distributed routing, mobility,
/// failures, churn, and a roster of attackers drawn from the master seed.
fn adversarial_config(seed: u64, behavior: NodeBehavior, fraction: f64) -> SimConfig {
    let mut config = SimConfig::paper_defaults(ProtocolKind::Spms, seed);
    config.routing_mode = RoutingMode::Distributed;
    config.mobility = Some(MobilityConfig::new(SimTime::from_millis(40), 0.1).unwrap());
    config.failures = Some(FailureConfig {
        mean_interarrival: SimTime::from_millis(20),
        repair_min: SimTime::from_millis(10),
        repair_max: SimTime::from_millis(30),
    });
    config.churn = Some(ChurnConfig::new(SimTime::from_millis(50), 0.25).unwrap());
    config.adversary = Some(AdversaryConfig {
        fraction,
        behavior,
        attack_start: SimTime::ZERO,
        attack_factor: 2,
        explicit: None,
    });
    config.horizon = SimTime::from_secs(2);
    config
}

fn run(config: SimConfig, seed: u64) -> RunMetrics {
    let topo = placement::grid(4, 4, 5.0).unwrap();
    let plan = traffic::all_to_all(16, 2, SimTime::from_millis(200), seed).unwrap();
    Simulation::run_with(config, topo, plan).unwrap()
}

#[test]
fn wall_clock_knobs_cannot_change_adversarial_results() {
    // The full matrix from the determinism suite, replayed under attack:
    // 3 event kernels x 2 table layouts x shards {1, auto, 16} must all
    // produce the reference bytes, AdversaryStats included.
    let seed = 61;
    let reference = run(adversarial_config(seed, NodeBehavior::Flooding, 0.25), seed);
    assert!(reference.adversary.adversaries > 0, "roster must be drawn");
    assert!(reference.adversary.packets_dropped > 0, "attack must bite");
    assert!(reference.adversary.bogus_advs > 0, "flooders must flood");
    assert!(reference.adversary.churn_epochs > 0, "churn must fire");
    for kernel in [
        EventKernel::Heap,
        EventKernel::Wheel,
        EventKernel::WheelBatched,
    ] {
        for layout in [TableLayout::Soa, TableLayout::Aos] {
            for shards in [1usize, 0, 16] {
                let mut config = adversarial_config(seed, NodeBehavior::Flooding, 0.25);
                config.event_kernel = kernel;
                config.table_layout = layout;
                config.dbf_shards = shards;
                let got = run(config, seed);
                assert_eq!(
                    got, reference,
                    "kernel={kernel} layout={layout} shards={shards}"
                );
            }
        }
    }
}

#[test]
fn sweep_workers_cannot_change_adversarial_results() {
    // The sweep executor processes adversarial specs too: 1 worker (the
    // sequential reference), auto, and a deliberately excessive pool must
    // emit byte-identical label/metrics pairs.
    use spms_workloads::{run_specs_with, RunSpec, SweepConfig};
    let topo = placement::grid(4, 4, 5.0).unwrap();
    let plan = traffic::all_to_all(16, 1, SimTime::from_millis(200), 71).unwrap();
    let spec = |label: &str, behavior, fraction| RunSpec {
        label: label.into(),
        config: adversarial_config(71, behavior, fraction),
        topology: topo.clone(),
        plan: plan.clone(),
    };
    let specs = vec![
        spec("honest", NodeBehavior::Honest, 0.0),
        spec("flood", NodeBehavior::Flooding, 0.2),
        spec("drop", NodeBehavior::SilentDropper, 0.2),
        spec("liar", NodeBehavior::MetadataLiar, 0.2),
    ];
    let reference = run_specs_with(specs.clone(), SweepConfig::with_workers(1));
    assert_eq!(reference[0].1.adversary.adversaries, 0);
    assert!(reference[1].1.adversary.bogus_advs > 0);
    for workers in [0usize, 16] {
        let got = run_specs_with(specs.clone(), SweepConfig::with_workers(workers));
        assert_eq!(got, reference, "workers = {workers}");
    }
}

/// Runs with `incremental_zones` on and off must agree on everything
/// except the zone-patch accounting the incremental path itself reports.
fn assert_matches_full_rebuild_oracle(config: &SimConfig, seed: u64) {
    let mut incremental = config.clone();
    incremental.incremental_zones = true;
    let mut full = config.clone();
    full.incremental_zones = false;
    let a = run(incremental, seed);
    let mut b = run(full, seed);
    b.routing.zone_patches = a.routing.zone_patches;
    b.routing.zone_rows_patched = a.routing.zone_rows_patched;
    assert_eq!(a, b, "incremental zone engine diverged from full rebuilds");
}

proptest! {
    // Fixed seed + bounded case count: tier-1 must explore the same cases
    // on every run, on every machine.
    #![proptest_config(ProptestConfig {
        cases: 12,
        rng_seed: 0x0000_D8F1_2008,
        ..ProptestConfig::default()
    })]

    /// The robustness fuzzer: random adversary/churn schedules keep the
    /// incremental zone engine bit-identical to the full-rebuild oracle,
    /// and every schedule replays byte-for-byte from its seed.
    #[test]
    fn random_adversary_schedules_match_the_oracle(
        seed in 0u64..1_000,
        behavior_ix in 0usize..4,
        fraction in 0.0f64..0.5,
        churn_fraction in 0.05f64..1.0,
        churn_interval_ms in 30u64..120,
        attack_start_ms in 0u64..500,
        attack_factor in 1u32..4,
        batch_epochs in 1u32..3,
    ) {
        let behavior = [
            NodeBehavior::Honest,
            NodeBehavior::Flooding,
            NodeBehavior::SilentDropper,
            NodeBehavior::MetadataLiar,
        ][behavior_ix];
        let mut config = adversarial_config(seed, behavior, fraction);
        config.adversary = Some(AdversaryConfig {
            fraction,
            behavior,
            attack_start: SimTime::from_millis(attack_start_ms),
            attack_factor,
            explicit: None,
        });
        config.churn =
            Some(ChurnConfig::new(SimTime::from_millis(churn_interval_ms), churn_fraction)
                .unwrap());
        config.batch_epochs = batch_epochs;
        let a = run(config.clone(), seed);
        let b = run(config.clone(), seed);
        prop_assert_eq!(&a, &b, "same schedule, same bytes");
        assert_matches_full_rebuild_oracle(&config, seed);
    }
}

// ---------------------------------------------------------------------------
// Minimized fuzz corpus: each schedule below was distilled from the
// proptest fuzzer and pinned because it exercises a delta-path branch the
// others miss. They are plain regression tests so a future change that
// breaks one branch fails with a readable name instead of a shrink log.
// ---------------------------------------------------------------------------

#[test]
fn corpus_coalesced_windows_with_silent_droppers() {
    // batch_epochs = 2: churn deltas land in a half-full batching window
    // and coalesce with mobility epochs instead of flushing immediately.
    let mut config = adversarial_config(17, NodeBehavior::SilentDropper, 0.25);
    config.batch_epochs = 2;
    let m = run(config.clone(), 17);
    assert!(m.adversary.packets_dropped > 0);
    assert_eq!(m.adversary.bogus_advs, 0, "droppers never advertise");
    assert!(m.adversary.churn_coalesced > 0, "windows must coalesce");
    assert!(m.routing.epochs_coalesced > 0);
    assert_matches_full_rebuild_oracle(&config, 17);
}

#[test]
fn corpus_full_cohort_leave_and_rejoin() {
    // churn fraction 1.0: every live node leaves in one epoch (the empty
    // field) and the departed cohort rejoins in the next — the two edge
    // cases of the cohort-delta path in one schedule.
    let mut config = adversarial_config(5, NodeBehavior::Honest, 0.0);
    config.failures = None; // isolate churn as the only liveness source
    config.churn = Some(ChurnConfig::new(SimTime::from_millis(60), 1.0).unwrap());
    let m = run(config.clone(), 5);
    assert!(
        m.adversary.churn_epochs >= 2,
        "leave and rejoin must both fire"
    );
    assert!(
        m.adversary.churn_leaves >= m.adversary.churn_joins,
        "every rejoin is preceded by a departure"
    );
    assert!(m.adversary.churn_leaves >= 16, "a whole cohort must depart");
    assert_matches_full_rebuild_oracle(&config, 5);
}

#[test]
fn corpus_dormant_then_active_metadata_liars() {
    // attack_start mid-run: the roster exists from t=0 but the liars stay
    // byte-honest until the switch flips, then start forging ADVs.
    let mut config = adversarial_config(23, NodeBehavior::MetadataLiar, 0.3);
    if let Some(adv) = &mut config.adversary {
        adv.attack_start = SimTime::from_millis(600);
    }
    let m = run(config.clone(), 23);
    assert!(m.adversary.adversaries > 0);
    assert!(
        m.adversary.packets_dropped > 0,
        "liars drop what they forge"
    );
    assert_matches_full_rebuild_oracle(&config, 23);
}

#[test]
fn corpus_flooding_storm_under_sharded_relaxation() {
    // The heaviest composite: flooding attackers at factor 3, churn, 16
    // DBF shards and the batched wheel — the branch where adversarial
    // traffic, cohort deltas and the sharded relaxation planner all meet.
    let mut config = adversarial_config(41, NodeBehavior::Flooding, 0.3);
    if let Some(adv) = &mut config.adversary {
        adv.attack_factor = 3;
    }
    config.dbf_shards = 16;
    config.event_kernel = EventKernel::WheelBatched;
    let m = run(config.clone(), 41);
    assert!(m.adversary.bogus_advs > 0);
    assert_eq!(
        m.adversary.bogus_advs % 3,
        0,
        "storms come in factor-sized bursts"
    );
    assert_matches_full_rebuild_oracle(&config, 41);
}

#[test]
fn adversary_fractions_degrade_delivery_monotonically_enough() {
    // The EXT5 claim at test scale: a quarter of the field dropping
    // traffic cannot *improve* delivery for any protocol.
    for protocol in [
        ProtocolKind::Flooding,
        ProtocolKind::Spin,
        ProtocolKind::Spms,
    ] {
        let benign = {
            let mut c = SimConfig::paper_defaults(protocol, 13);
            c.horizon = SimTime::from_secs(2);
            run(c, 13)
        };
        let attacked = {
            let mut c = SimConfig::paper_defaults(protocol, 13);
            c.horizon = SimTime::from_secs(2);
            c.adversary = Some(AdversaryConfig::new(NodeBehavior::SilentDropper, 0.25).unwrap());
            run(c, 13)
        };
        assert!(
            attacked.delivery_ratio() <= benign.delivery_ratio(),
            "{protocol}: attacked {} vs benign {}",
            attacked.delivery_ratio(),
            benign.delivery_ratio()
        );
    }
}
