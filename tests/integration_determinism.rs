//! Reproducibility guarantees: the properties DESIGN.md promises about
//! seeds and determinism, checked across subsystem combinations.

use spms::{EventKernel, ProtocolKind, RoutingMode, SimConfig, Simulation, TableLayout};
use spms_kernel::SimTime;
use spms_net::{placement, FailureConfig, MobilityConfig};
use spms_workloads::traffic;

fn full_featured_config(seed: u64) -> SimConfig {
    let mut config = SimConfig::paper_defaults(ProtocolKind::Spms, seed);
    config.failures = Some(FailureConfig::paper_defaults());
    config.mobility = Some(MobilityConfig::new(SimTime::from_millis(400), 0.1).unwrap());
    config.routing_mode = RoutingMode::Distributed;
    config.trace_capacity = Some(64);
    config
}

fn run_full(seed: u64) -> spms::RunMetrics {
    let topo = placement::grid(4, 4, 5.0).unwrap();
    let plan = traffic::all_to_all(16, 2, SimTime::from_millis(200), seed).unwrap();
    Simulation::run_with(full_featured_config(seed), topo, plan).unwrap()
}

#[test]
fn identical_seeds_identical_runs_with_everything_enabled() {
    // Failures + mobility + distributed routing + tracing all at once.
    let a = run_full(1234);
    let b = run_full(1234);
    assert_eq!(a, b);
}

#[test]
fn different_seeds_change_details_not_guarantees() {
    let a = run_full(1);
    let b = run_full(2);
    // Stochastic details differ…
    assert_ne!(
        (a.events_processed, a.failures_injected),
        (b.events_processed, b.failures_injected)
    );
    // …but both runs complete with high delivery.
    assert!(a.delivery_ratio() > 0.85);
    assert!(b.delivery_ratio() > 0.85);
}

#[test]
fn parallel_sweep_equals_sequential_runs() {
    use spms_workloads::{run_specs, RunSpec};
    let topo = placement::grid(3, 3, 5.0).unwrap();
    let plan = traffic::all_to_all(9, 1, SimTime::from_millis(200), 3).unwrap();
    let spec = |label: &str| RunSpec {
        label: label.into(),
        config: SimConfig::paper_defaults(ProtocolKind::Spms, 3),
        topology: topo.clone(),
        plan: plan.clone(),
    };
    let parallel = run_specs(vec![spec("x"), spec("y"), spec("z")]);
    let sequential =
        Simulation::run_with(SimConfig::paper_defaults(ProtocolKind::Spms, 3), topo, plan).unwrap();
    for (_, m) in parallel {
        assert_eq!(m, sequential);
    }
}

#[test]
fn sweep_worker_count_cannot_change_results() {
    // A mixed-protocol mini-sweep through the executor at 1 worker (the
    // sequential reference), the host's available parallelism, and a
    // deliberately excessive pool: labels, order, and every RunMetrics
    // byte must be identical — the worker pool is a wall-clock knob, never
    // a semantic one.
    use spms_workloads::{run_specs_with, RunSpec, SweepConfig};
    let topo = placement::grid(4, 4, 5.0).unwrap();
    let plan = traffic::all_to_all(16, 1, SimTime::from_millis(200), 5).unwrap();
    let spec = |label: &str, protocol, seed| {
        let mut config = full_featured_config(seed);
        config.protocol = protocol;
        RunSpec {
            label: label.into(),
            config,
            topology: topo.clone(),
            plan: plan.clone(),
        }
    };
    let specs = vec![
        spec("spms", ProtocolKind::Spms, 21),
        spec("spin", ProtocolKind::Spin, 22),
        spec("flood", ProtocolKind::Flooding, 23),
        spec("spms-again", ProtocolKind::Spms, 21),
    ];
    let reference = run_specs_with(specs.clone(), SweepConfig::with_workers(1));
    assert_eq!(reference[0].1, reference[3].1, "same spec, same bytes");
    for workers in [0usize, 16] {
        let got = run_specs_with(specs.clone(), SweepConfig::with_workers(workers));
        assert_eq!(got, reference, "workers = {workers}");
    }
}

#[test]
fn event_kernel_cannot_change_results() {
    // The heap/wheel/batched-wheel equality matrix across all three
    // protocols, mirroring the shards-{1,auto,16} pattern: a full-featured
    // run (failures + mobility + distributed routing + tracing) must
    // produce byte-identical RunMetrics whichever event kernel executes it
    // — the kernel is a wall-clock knob, never a semantic one. This is the
    // end-to-end rung of the oracle chain the differential suites in
    // `crates/kernel/tests/` establish pop-for-pop.
    let run = |protocol, kernel| {
        let topo = placement::grid(4, 4, 5.0).unwrap();
        let plan = traffic::all_to_all(16, 2, SimTime::from_millis(200), 31).unwrap();
        let mut config = full_featured_config(31);
        config.protocol = protocol;
        config.event_kernel = kernel;
        Simulation::run_with(config, topo, plan).unwrap()
    };
    for protocol in [
        ProtocolKind::Flooding,
        ProtocolKind::Spin,
        ProtocolKind::Spms,
    ] {
        let heap = run(protocol, EventKernel::Heap);
        assert!(heap.events_processed > 0);
        for kernel in [EventKernel::Wheel, EventKernel::WheelBatched] {
            let got = run(protocol, kernel);
            assert_eq!(got, heap, "{protocol} under {kernel} vs heap");
        }
    }
}

#[test]
fn table_layout_cannot_change_results() {
    // The SoA/AoS equality matrix across all three protocols, mirroring
    // the event-kernel matrix above: a full-featured run (failures +
    // mobility + distributed routing + tracing) must produce
    // byte-identical RunMetrics whichever arena layout the routing tables
    // use — the layout is a wall-clock knob, never a semantic one. This is
    // the end-to-end rung of the oracle chain the layout-differential
    // suite in `crates/routing/tests/layout.rs` establishes offer-for-offer.
    let run = |protocol, layout| {
        let topo = placement::grid(4, 4, 5.0).unwrap();
        let plan = traffic::all_to_all(16, 2, SimTime::from_millis(200), 47).unwrap();
        let mut config = full_featured_config(47);
        config.protocol = protocol;
        config.table_layout = layout;
        Simulation::run_with(config, topo, plan).unwrap()
    };
    for protocol in [
        ProtocolKind::Flooding,
        ProtocolKind::Spin,
        ProtocolKind::Spms,
    ] {
        let soa = run(protocol, TableLayout::Soa);
        assert!(soa.events_processed > 0);
        let aos = run(protocol, TableLayout::Aos);
        assert_eq!(aos, soa, "{protocol} under aos vs soa");
    }
}

#[test]
fn shard_count_cannot_change_results() {
    // A fig12-style mobility run (distributed routing, incremental zones
    // and routing, every epoch re-converging through the shard planner
    // and its persistent worker pool, which is reused across all the
    // run's epochs): pinning the delta exchange to one shard, two shards,
    // the host's available parallelism, and a deliberately excessive
    // count must produce byte-identical RunMetrics — the shard planner
    // and pool are wall-clock knobs, never semantic ones.
    let run = |shards: usize| {
        let topo = placement::grid(5, 5, 5.0).unwrap();
        let plan = traffic::all_to_all(25, 2, SimTime::from_millis(200), 8).unwrap();
        let mut config = SimConfig::paper_defaults(ProtocolKind::Spms, 8);
        config.routing_mode = RoutingMode::Distributed;
        config.mobility = Some(MobilityConfig::new(SimTime::from_millis(150), 0.1).unwrap());
        config.dbf_shards = shards;
        Simulation::run_with(config, topo, plan).unwrap()
    };
    let single = run(1);
    assert!(single.mobility_epochs > 0, "epochs must fire");
    assert_eq!(
        single.routing.sharded_executions,
        single.routing.incremental_executions
    );
    let two = run(2); // the smallest pool with real workers
    let auto = run(0); // resolves to host_parallelism
    let wide = run(16); // more shards than the host has cores
    assert_eq!(single, two, "1 shard vs 2 shards");
    assert_eq!(single, auto, "1 shard vs host_parallelism");
    assert_eq!(single, wide, "1 shard vs 16 shards");
}

#[test]
fn shard_count_cannot_change_full_rebuild_results() {
    // The non-incremental twin of `shard_count_cannot_change_results`:
    // with incremental routing off, every mobility epoch re-executes the
    // FULL rebuild, which now routes through `DbfEngine::rebuild_sharded`
    // on the same persistent pool. Same-seed runs at 1 shard, 2 shards,
    // the host's available parallelism, and a deliberately excessive
    // count must still produce byte-identical RunMetrics — the sharded
    // full rebuild is bit-identical to the sequential reference rebuild,
    // stats included.
    let run = |shards: usize| {
        let topo = placement::grid(5, 5, 5.0).unwrap();
        let plan = traffic::all_to_all(25, 2, SimTime::from_millis(200), 8).unwrap();
        let mut config = SimConfig::paper_defaults(ProtocolKind::Spms, 8);
        config.routing_mode = RoutingMode::Distributed;
        config.mobility = Some(MobilityConfig::new(SimTime::from_millis(150), 0.1).unwrap());
        config.incremental_routing = false;
        config.dbf_shards = shards;
        Simulation::run_with(config, topo, plan).unwrap()
    };
    let single = run(1);
    assert!(single.mobility_epochs > 0, "epochs must fire");
    assert_eq!(
        single.routing.executions,
        1 + single.mobility_epochs,
        "every epoch re-executes the full rebuild"
    );
    assert_eq!(single.routing.incremental_executions, 0);
    assert_eq!(single, run(2), "1 shard vs 2 shards");
    assert_eq!(single, run(0), "1 shard vs host_parallelism");
    assert_eq!(single, run(16), "1 shard vs 16 shards");
}

#[test]
fn batched_windows_are_reproducible() {
    let run = || {
        let topo = placement::grid(5, 5, 5.0).unwrap();
        let plan = traffic::all_to_all(25, 2, SimTime::from_millis(200), 15).unwrap();
        let mut config = SimConfig::paper_defaults(ProtocolKind::Spms, 15);
        config.routing_mode = RoutingMode::Distributed;
        config.mobility = Some(MobilityConfig::new(SimTime::from_millis(150), 0.1).unwrap());
        config.batch_epochs = 2;
        Simulation::run_with(config, topo, plan).unwrap()
    };
    let a = run();
    let b = run();
    assert!(a.routing.batch_windows > 0);
    assert!(a.routing.epochs_coalesced > 0);
    assert_eq!(a, b);
}

#[test]
fn seed_controls_every_stochastic_subsystem() {
    // Two configs differing ONLY in seed must diverge in MAC backoffs
    // (reflected in queue-wait statistics) even with no failures/mobility.
    let topo = placement::grid(4, 4, 5.0).unwrap();
    let plan = traffic::all_to_all(16, 1, SimTime::from_millis(200), 9).unwrap();
    let run = |seed| {
        Simulation::run_with(
            SimConfig::paper_defaults(ProtocolKind::Spms, seed),
            topo.clone(),
            plan.clone(),
        )
        .unwrap()
    };
    let a = run(100);
    let b = run(101);
    assert_ne!(
        a.delay_ms, b.delay_ms,
        "different seeds must perturb MAC backoff timing"
    );
    // But structural outcomes agree.
    assert_eq!(a.deliveries, b.deliveries);
    assert_eq!(a.messages.adv.value(), b.messages.adv.value());
}

#[test]
fn timeouts_resolve_identically_for_identical_deployments() {
    let topo = placement::grid(5, 5, 5.0).unwrap();
    let plan = traffic::single_source(spms_net::NodeId::new(12), 1, SimTime::ZERO).unwrap();
    let sim1 = Simulation::new(
        SimConfig::paper_defaults(ProtocolKind::Spms, 1),
        topo.clone(),
        plan.clone(),
    )
    .unwrap();
    let sim2 = Simulation::new(
        SimConfig::paper_defaults(ProtocolKind::Spms, 99),
        topo,
        plan,
    )
    .unwrap();
    // Timeout resolution is seed-independent (it derives from topology).
    assert_eq!(sim1.timeouts(), sim2.timeouts());
    assert!(sim1.timeouts().dat > sim1.timeouts().adv);
}
