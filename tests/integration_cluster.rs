//! Cluster-based hierarchical communication (§5.2): cluster heads collect
//! data; zone bystanders are interested with 5% probability.

use spms::{Interest, ProtocolKind, SimConfig, Simulation};
use spms_kernel::SimTime;
use spms_net::{placement, FailureConfig};
use spms_phy::RadioProfile;
use spms_workloads::traffic::{self, cluster_assignment};

fn cluster_run(protocol: ProtocolKind, seed: u64, radius: f64) -> spms::RunMetrics {
    let topo = placement::grid(6, 6, 5.0).unwrap();
    let mut config = SimConfig::paper_defaults(protocol, seed);
    config.zone_radius_m = radius;
    let plan = traffic::cluster_hierarchical(
        &topo,
        &RadioProfile::mica2(),
        radius,
        2,
        SimTime::from_millis(200),
        0.05,
        seed,
    )
    .unwrap();
    Simulation::run_with(config, topo, plan).unwrap()
}

#[test]
fn heads_receive_everything() {
    for protocol in [ProtocolKind::Spms, ProtocolKind::Spin] {
        let m = cluster_run(protocol, 1, 20.0);
        assert_eq!(
            m.delivery_ratio(),
            1.0,
            "{protocol}: {}/{}",
            m.deliveries,
            m.deliveries_expected
        );
    }
}

#[test]
fn cluster_traffic_is_much_lighter_than_all_to_all() {
    let topo = placement::grid(6, 6, 5.0).unwrap();
    let cluster = traffic::cluster_hierarchical(
        &topo,
        &RadioProfile::mica2(),
        20.0,
        2,
        SimTime::from_millis(200),
        0.05,
        3,
    )
    .unwrap();
    let all = traffic::all_to_all(36, 2, SimTime::from_millis(200), 3).unwrap();
    assert!(cluster.expected_deliveries(36) < all.expected_deliveries(36) / 4);
}

#[test]
fn spms_saves_energy_on_cluster_traffic() {
    let spin = cluster_run(ProtocolKind::Spin, 5, 20.0);
    let spms = cluster_run(ProtocolKind::Spms, 5, 20.0);
    assert!(
        spms.energy.total() < spin.energy.total(),
        "SPMS {} vs SPIN {}",
        spms.energy.total(),
        spin.energy.total()
    );
}

#[test]
fn failures_do_not_break_head_collection() {
    let topo = placement::grid(6, 6, 5.0).unwrap();
    let mut config = SimConfig::paper_defaults(ProtocolKind::Spms, 7);
    config.failures = Some(FailureConfig::paper_defaults());
    let plan = traffic::cluster_hierarchical(
        &topo,
        &RadioProfile::mica2(),
        20.0,
        2,
        SimTime::from_millis(200),
        0.05,
        7,
    )
    .unwrap();
    let m = Simulation::run_with(config, topo, plan).unwrap();
    assert!(m.failures_injected > 0);
    assert!(m.delivery_ratio() > 0.9, "{}", m.delivery_ratio());
}

#[test]
fn clustering_respects_zone_geometry() {
    let topo = placement::grid(10, 10, 5.0).unwrap();
    let clustering = cluster_assignment(&topo, 20.0).unwrap();
    // Every member is within its head's zone (the paper's SPIN sends
    // member→head directly, so the head must be zone-reachable).
    for node in topo.nodes() {
        let head = clustering.head_of[node.index()];
        let d = topo.distance(node, head);
        assert!(
            d <= 2.0 * 20.0_f64.sqrt() * 5.0,
            "{node} is {d:.1} m from its head"
        );
    }
}

#[test]
fn interest_sets_exclude_sources_and_stay_small() {
    let topo = placement::grid(6, 6, 5.0).unwrap();
    let plan = traffic::cluster_hierarchical(
        &topo,
        &RadioProfile::mica2(),
        20.0,
        1,
        SimTime::from_millis(200),
        0.05,
        11,
    )
    .unwrap();
    let Interest::PerMeta(map) = &plan.interest else {
        panic!("cluster interest is explicit");
    };
    for g in &plan.generations {
        let set = &map[&g.meta];
        assert!(!set.contains(&g.source));
        assert!(set.len() <= 1 + 36 / 4, "interest set too large");
    }
}

#[test]
fn spms_iz_on_cluster_traffic_delivers_with_known_overhead() {
    // Cluster traffic is intra-zone by construction (heads are zone
    // members). SPMS-IZ still delivers everything, but its bordercast
    // floods queries whether or not remote interest exists — on
    // zone-local patterns that is pure overhead (measured at about 3.6x
    // here: every item\'s 2 B query crossing the whole field). This is
    // the documented cost of the extension, and the TTL knob removes it:
    // ttl = 0 suppresses the bordercast and degenerates to base SPMS.
    let base = cluster_run(ProtocolKind::Spms, 9, 20.0);
    let iz = cluster_run(ProtocolKind::SpmsIz, 9, 20.0);
    assert_eq!(base.delivery_ratio(), 1.0);
    assert_eq!(iz.delivery_ratio(), 1.0);
    assert_eq!(iz.deliveries, base.deliveries);
    let ratio = iz.energy.total().value() / base.energy.total().value();
    assert!(
        (1.0..5.0).contains(&ratio),
        "IZ cluster overhead out of band: {ratio}"
    );

    // With the bordercast disabled the protocols coincide.
    let topo = placement::grid(6, 6, 5.0).unwrap();
    let mut config = SimConfig::paper_defaults(ProtocolKind::SpmsIz, 9);
    config.interzone.ttl = Some(0);
    let plan = traffic::cluster_hierarchical(
        &topo,
        &RadioProfile::mica2(),
        20.0,
        2,
        SimTime::from_millis(200),
        0.05,
        9,
    )
    .unwrap();
    let degenerate = Simulation::run_with(config, topo, plan).unwrap();
    assert_eq!(degenerate.deliveries, base.deliveries);
    let tight = degenerate.energy.total().value() / base.energy.total().value();
    assert!(
        (0.99..1.01).contains(&tight),
        "ttl=0 must coincide with base SPMS: {tight}"
    );
}
