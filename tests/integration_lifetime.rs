//! Battery budgets and the §3.1 resource-adaptation behavior: nodes die
//! permanently when their budget is spent, low-battery nodes decline
//! third-party forwarding, and SPMS outlives SPIN under equal budgets.

use spms::{ProtocolKind, SimConfig, Simulation};
use spms_kernel::SimTime;
use spms_net::placement;
use spms_workloads::traffic;

fn lifetime_run(
    protocol: ProtocolKind,
    capacity_uj: Option<f64>,
    threshold: f64,
    seed: u64,
) -> spms::RunMetrics {
    let topo = placement::grid(5, 5, 5.0).unwrap();
    let mut config = SimConfig::paper_defaults(protocol, seed);
    config.battery_capacity_uj = capacity_uj;
    config.low_battery_threshold = threshold;
    config.horizon = SimTime::from_secs(120);
    let plan = traffic::all_to_all(25, 6, SimTime::from_millis(300), seed).unwrap();
    Simulation::run_with(config, topo, plan).unwrap()
}

#[test]
fn no_budget_means_no_deaths() {
    let m = lifetime_run(ProtocolKind::Spms, None, 0.0, 1);
    assert_eq!(m.nodes_dead, 0);
    assert_eq!(m.first_death_at, None);
    assert_eq!(m.delivery_ratio(), 1.0);
}

#[test]
fn tight_budgets_kill_nodes_and_record_first_death() {
    let m = lifetime_run(ProtocolKind::Spin, Some(2.0), 0.0, 1);
    assert!(m.nodes_dead > 0, "2 µJ cannot sustain the SPIN workload");
    let t = m.first_death_at.expect("a death time");
    assert!(t > SimTime::ZERO && t <= m.finished_at);
    // Dead nodes stop participating: delivery is partial, never > expected.
    assert!(m.deliveries < m.deliveries_expected);
    // Every dead node's spend reached the cap (small overshoot allowed:
    // the killing charge completes).
    let dead_spends: Vec<f64> = m
        .per_node_energy_uj
        .iter()
        .filter(|&&e| e >= 2.0)
        .copied()
        .collect();
    assert_eq!(dead_spends.len() as u64, m.nodes_dead);
}

#[test]
fn spms_outlives_spin_under_equal_budgets() {
    // The headline "energy aware" property: with the same per-node budget,
    // SPMS delivers an order of magnitude more before exhaustion and its
    // first casualty comes much later. (End-of-run dead *counts* converge
    // — sustained traffic eventually drains any finite battery — so the
    // lifetime metrics are deliveries and first-death time.)
    for seed in [3u64, 4, 5] {
        let spms = lifetime_run(ProtocolKind::Spms, Some(3.0), 0.0, seed);
        let spin = lifetime_run(ProtocolKind::Spin, Some(3.0), 0.0, seed);
        assert!(
            spin.nodes_dead > 0,
            "seed {seed}: budget chosen to bite SPIN"
        );
        assert!(
            spms.deliveries >= 10 * spin.deliveries,
            "seed {seed}: SPMS {} vs SPIN {} deliveries",
            spms.deliveries,
            spin.deliveries
        );
        let a = spms.first_death_at.expect("SPMS eventually drains too");
        let b = spin.first_death_at.expect("SPIN death expected");
        assert!(
            a >= b * 2,
            "seed {seed}: SPMS first death {a} not ≥2× later than SPIN {b}"
        );
    }
}

#[test]
fn relay_refusal_still_delivers_via_direct_failover() {
    // With the §3.1 threshold active and a budget that pushes relays
    // below it, multi-hop REQs get refused — the τDAT ladder's direct
    // (higher-power) fallback must keep delivery complete.
    let adaptive = lifetime_run(ProtocolKind::Spms, Some(40.0), 0.5, 7);
    assert_eq!(adaptive.nodes_dead, 0, "budget generous enough to survive");
    assert_eq!(
        adaptive.delivery_ratio(),
        1.0,
        "refusals must degrade routes, not delivery"
    );
}

#[test]
fn battery_runs_are_deterministic() {
    let a = lifetime_run(ProtocolKind::Spms, Some(2.5), 0.3, 11);
    let b = lifetime_run(ProtocolKind::Spms, Some(2.5), 0.3, 11);
    assert_eq!(a, b);
}

#[test]
fn config_validation_covers_battery_fields() {
    let mut c = SimConfig::paper_defaults(ProtocolKind::Spms, 1);
    c.battery_capacity_uj = Some(0.0);
    assert!(c.validate().is_err());
    c.battery_capacity_uj = Some(f64::NAN);
    assert!(c.validate().is_err());
    c.battery_capacity_uj = Some(10.0);
    c.low_battery_threshold = 1.5;
    assert!(c.validate().is_err());
    c.low_battery_threshold = 0.25;
    assert!(c.validate().is_ok());
}
