//! Fast determinism smoke test guarding future refactors: one small grid,
//! every paper protocol, the same seed run twice, metrics compared
//! bit-for-bit. Runs in well under a second so it can gate any change.

use spms::{ProtocolKind, SimConfig, Simulation};
use spms_kernel::SimTime;
use spms_net::placement;
use spms_workloads::traffic;

fn run_once(protocol: ProtocolKind, seed: u64) -> spms::RunMetrics {
    let topo = placement::grid(4, 4, 5.0).unwrap();
    let plan = traffic::all_to_all(16, 1, SimTime::from_millis(250), seed).unwrap();
    Simulation::run_with(SimConfig::paper_defaults(protocol, seed), topo, plan).unwrap()
}

#[test]
fn same_seed_reproduces_each_protocol_bit_for_bit() {
    for protocol in [
        ProtocolKind::Flooding,
        ProtocolKind::Spin,
        ProtocolKind::Spms,
    ] {
        let a = run_once(protocol, 2004);
        let b = run_once(protocol, 2004);
        assert_eq!(a, b, "{} diverged under a fixed seed", protocol.label());
        // A run that delivers nothing would be a vacuous determinism check.
        assert!(a.deliveries > 0, "{} delivered nothing", protocol.label());
    }
}
