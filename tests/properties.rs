//! Property-based tests over the whole stack: invariants that must hold
//! for arbitrary topologies, seeds and configurations.

use proptest::prelude::*;

use spms::{ProtocolKind, SimConfig, Simulation};
use spms_kernel::{SimRng, SimTime};
use spms_net::{dijkstra, placement, NodeId, ZoneTable};
use spms_phy::RadioProfile;
use spms_routing::{oracle_tables, DbfEngine};
use spms_workloads::traffic;

proptest! {
    // Fixed seed + bounded case count: tier-1 must explore the same cases on
    // every run, on every machine.
    #![proptest_config(ProptestConfig {
        cases: 24,
        rng_seed: 0x5EED_2004_D51F,
        ..ProptestConfig::default()
    })]

    /// Distributed Bellman-Ford converges to the Dijkstra-derived tables on
    /// arbitrary random topologies, radii and k.
    #[test]
    fn dbf_equals_oracle(
        seed in 0u64..1_000,
        n in 5usize..35,
        radius in 8.0f64..30.0,
        k in 1usize..4,
    ) {
        let mut rng = SimRng::new(seed);
        let topo = placement::uniform_random(n, 5.0, &mut rng).unwrap();
        let zones = ZoneTable::build(&topo, &RadioProfile::mica2(), radius);
        let mut dbf = DbfEngine::new(&zones, k);
        dbf.run_to_convergence(&zones);
        let oracle = oracle_tables(&zones, k);
        for (i, table) in oracle.iter().enumerate() {
            let node = NodeId::new(i as u32);
            let want: Vec<NodeId> = table.destinations().collect();
            let got: Vec<NodeId> = dbf.table(node).destinations().collect();
            prop_assert_eq!(&want, &got, "node {} destinations", node);
            for dest in want {
                let a = table.best(dest).unwrap();
                let b = dbf.table(node).best(dest).unwrap();
                prop_assert!((a.cost - b.cost).abs() < 1e-9,
                    "{}→{}: oracle {} vs dbf {}", node, dest, a.cost, b.cost);
                prop_assert_eq!(a.via, b.via);
            }
        }
    }

    /// The best route cost via the oracle is a lower bound for every stored
    /// alternative, and alternatives are sorted.
    #[test]
    fn route_alternatives_are_sorted(
        seed in 0u64..1_000,
        n in 5usize..30,
    ) {
        let mut rng = SimRng::new(seed);
        let topo = placement::uniform_random(n, 5.0, &mut rng).unwrap();
        let zones = ZoneTable::build(&topo, &RadioProfile::mica2(), 20.0);
        let tables = oracle_tables(&zones, 3);
        for (i, table) in tables.iter().enumerate() {
            let node = NodeId::new(i as u32);
            for dest in table.destinations() {
                let routes = table.routes_to(dest).to_vec();
                for pair in routes.windows(2) {
                    prop_assert!(pair[0].cost <= pair[1].cost + 1e-12,
                        "{}→{} unsorted", node, dest);
                }
                // And the best agrees with Dijkstra.
                let dist = dijkstra(&zones, dest);
                let want = dist[i].unwrap();
                prop_assert!((routes[0].cost - want.cost).abs() < 1e-9);
            }
        }
    }

    /// Full delivery on connected grids for every protocol, any seed.
    #[test]
    fn dissemination_is_complete_on_grids(
        seed in 0u64..1_000,
        side in 3usize..6,
        protocol_idx in 0usize..4,
    ) {
        let protocol = [ProtocolKind::Spms, ProtocolKind::Spin, ProtocolKind::Flooding,
            ProtocolKind::SpmsIz]
            [protocol_idx];
        let topo = placement::grid(side, side, 5.0).unwrap();
        let n = topo.len();
        let config = SimConfig::paper_defaults(protocol, seed);
        let plan = traffic::all_to_all(n, 1, SimTime::from_millis(300), seed).unwrap();
        let m = Simulation::run_with(config, topo, plan).unwrap();
        prop_assert_eq!(m.deliveries, m.deliveries_expected,
            "{} failed delivery", protocol.label());
    }

    /// Energy accounting is non-negative, categorized, and delay samples
    /// match delivery counts.
    #[test]
    fn metrics_invariants(
        seed in 0u64..1_000,
        radius in 8.0f64..26.0,
    ) {
        let topo = placement::grid(4, 4, 5.0).unwrap();
        let mut config = SimConfig::paper_defaults(ProtocolKind::Spms, seed);
        config.zone_radius_m = radius;
        let plan = traffic::all_to_all(16, 1, SimTime::from_millis(300), seed).unwrap();
        let m = Simulation::run_with(config, topo, plan).unwrap();
        prop_assert!(m.energy.total().value() >= 0.0);
        prop_assert!(m.energy.tx_total() <= m.energy.total());
        prop_assert_eq!(m.delay_ms.count(), m.deliveries);
        prop_assert!(m.deliveries <= m.deliveries_expected);
        if let Some(min) = m.delay_ms.min() {
            prop_assert!(min >= 0.0);
        }
    }

    /// SPMS-IZ delivers to an arbitrary far sink on arbitrary-length
    /// pipelines — wherever a relay chain exists at all — and never beats
    /// flooding on delivery while losing to it on energy.
    #[test]
    fn interzone_delivers_wherever_reachable(
        seed in 0u64..1_000,
        len in 6usize..30,
        sink_back in 0usize..4,
    ) {
        let sink = (len - 1 - sink_back.min(len - 2)) as u32;
        let topo = placement::grid(len, 1, 5.0).unwrap();
        let mut config = SimConfig::paper_defaults(ProtocolKind::SpmsIz, seed);
        config.horizon = SimTime::from_secs(120);
        let plan = traffic::pipeline(
            NodeId::new(0),
            &[NodeId::new(sink)],
            1,
            SimTime::ZERO,
        ).unwrap();
        let m = Simulation::run_with(config, topo, plan).unwrap();
        prop_assert_eq!(m.deliveries, 1, "sink n{} on a {}-node line", sink, len);
        prop_assert_eq!(m.delay_ms.count(), 1);
        prop_assert!(m.energy.total().value() > 0.0);
    }

    /// Inter-zone REQ legs are always zone-adjacent: every stored border
    /// path's consecutive waypoints can hear each other, for arbitrary
    /// random fields.
    #[test]
    fn border_paths_are_zone_adjacent(
        seed in 0u64..1_000,
        n in 8usize..30,
        radius in 10.0f64..25.0,
    ) {
        use spms_interzone::border_relays;
        let mut rng = SimRng::new(seed);
        let topo = placement::uniform_random(n, 5.0, &mut rng).unwrap();
        let zones = ZoneTable::build(&topo, &RadioProfile::mica2(), radius);
        // Border relays by construction are zone neighbors; chains built
        // from successive relays are therefore zone-adjacent.
        for node in topo.nodes() {
            for relay in border_relays(&zones, node) {
                prop_assert!(zones.in_zone(node, relay));
                prop_assert!(zones.in_zone(relay, node));
            }
        }
    }

    /// Determinism: the same seed reproduces the same run bit-for-bit, for
    /// any protocol and failure setting.
    #[test]
    fn runs_are_deterministic(
        seed in 0u64..1_000,
        protocol_idx in 0usize..4,
        with_failures in any::<bool>(),
    ) {
        let protocol = [ProtocolKind::Spms, ProtocolKind::Spin, ProtocolKind::Flooding,
            ProtocolKind::SpmsIz]
            [protocol_idx];
        let mk = || {
            let topo = placement::grid(4, 4, 5.0).unwrap();
            let mut config = SimConfig::paper_defaults(protocol, seed);
            if with_failures {
                config.failures = Some(spms_net::FailureConfig::paper_defaults());
            }
            let plan = traffic::all_to_all(16, 1, SimTime::from_millis(250), seed).unwrap();
            Simulation::run_with(config, topo, plan).unwrap()
        };
        prop_assert_eq!(mk(), mk());
    }

    /// The zone tables respect the triangle of definitions: every link is
    /// within the radius, at the cheapest covering level, symmetric.
    #[test]
    fn zone_invariants(
        seed in 0u64..1_000,
        n in 4usize..40,
        radius in 6.0f64..40.0,
    ) {
        let mut rng = SimRng::new(seed);
        let topo = placement::uniform_random(n, 5.0, &mut rng).unwrap();
        let radio = RadioProfile::mica2();
        let zones = ZoneTable::build(&topo, &radio, radius);
        for node in topo.nodes() {
            for link in zones.links(node) {
                prop_assert!(link.distance_m <= radius + 1e-9);
                prop_assert!(radio.range_m(link.level) >= link.distance_m);
                prop_assert!(zones.in_zone(link.neighbor, node));
                if let Some(cheaper) = radio.level(link.level.index() + 1) {
                    prop_assert!(radio.range_m(cheaper) < link.distance_m);
                }
            }
        }
    }
}
