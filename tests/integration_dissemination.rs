//! Cross-crate end-to-end dissemination tests: every protocol delivers the
//! right data to the right nodes over real multi-hop topologies.

use spms::{ProtocolKind, RoutingMode, SimConfig, Simulation};
use spms_kernel::SimTime;
use spms_net::{placement, NodeId};
use spms_workloads::traffic;

fn run(
    protocol: ProtocolKind,
    cols: usize,
    rows: usize,
    radius: f64,
    seed: u64,
) -> spms::RunMetrics {
    let topo = placement::grid(cols, rows, 5.0).unwrap();
    let n = topo.len();
    let mut config = SimConfig::paper_defaults(protocol, seed);
    config.zone_radius_m = radius;
    let plan = traffic::all_to_all(n, 1, SimTime::from_millis(250), seed).unwrap();
    Simulation::run_with(config, topo, plan).unwrap()
}

#[test]
fn all_protocols_achieve_full_delivery_on_grid() {
    for protocol in [
        ProtocolKind::Spms,
        ProtocolKind::Spin,
        ProtocolKind::Flooding,
    ] {
        let m = run(protocol, 5, 5, 20.0, 7);
        assert_eq!(
            m.deliveries, m.deliveries_expected,
            "{protocol} delivered {}/{}",
            m.deliveries, m.deliveries_expected
        );
        assert_eq!(m.delivery_ratio(), 1.0);
    }
}

#[test]
fn spms_beats_spin_on_energy_at_every_tested_radius() {
    for radius in [10.0, 15.0, 20.0] {
        let spin = run(ProtocolKind::Spin, 5, 5, radius, 3);
        let spms = run(ProtocolKind::Spms, 5, 5, radius, 3);
        assert!(
            spms.energy.total() < spin.energy.total(),
            "radius {radius}: SPMS {} >= SPIN {}",
            spms.energy.total(),
            spin.energy.total()
        );
    }
}

#[test]
fn multi_zone_line_requires_relay_chains() {
    // A 1×9 line at 5 m spacing spans 40 m: beyond one 20 m zone, so data
    // must cross zone boundaries through re-advertisement.
    let m = run(ProtocolKind::Spms, 9, 1, 20.0, 11);
    assert_eq!(m.delivery_ratio(), 1.0);
    // Multi-hop REQ/DATA means strictly more REQ sends than metas.
    assert!(m.messages.req.value() >= m.packets_generated);
}

#[test]
fn spms_data_travels_at_lower_power_than_spin() {
    use spms_phy::EnergyCategory;
    let spin = run(ProtocolKind::Spin, 5, 5, 20.0, 5);
    let spms = run(ProtocolKind::Spms, 5, 5, 20.0, 5);
    // The DATA category is where the multi-hop low-power savings live.
    let spin_data = spin.energy.get(EnergyCategory::Data).value();
    let spms_data = spms.energy.get(EnergyCategory::Data).value();
    assert!(
        spms_data < spin_data / 2.0,
        "SPMS data energy {spms_data} vs SPIN {spin_data}"
    );
    // ADV energy is comparable (both broadcast zone-wide once per holder).
    let spin_adv = spin.energy.get(EnergyCategory::Adv).value();
    let spms_adv = spms.energy.get(EnergyCategory::Adv).value();
    assert!((spms_adv / spin_adv - 1.0).abs() < 0.25);
}

#[test]
fn flooding_shows_implosion_spin_shows_fewer_duplicates() {
    let flood = run(ProtocolKind::Flooding, 4, 4, 20.0, 9);
    let spin = run(ProtocolKind::Spin, 4, 4, 20.0, 9);
    assert!(flood.duplicates > 0, "flooding must implode");
    assert!(
        spin.duplicates <= flood.duplicates,
        "negotiation must reduce duplicates: SPIN {} vs flooding {}",
        spin.duplicates,
        flood.duplicates
    );
}

#[test]
fn oracle_and_distributed_routing_agree_on_outcomes() {
    let topo = placement::grid(4, 4, 5.0).unwrap();
    let plan = traffic::single_source(NodeId::new(5), 2, SimTime::from_millis(300)).unwrap();
    let mut oracle_cfg = SimConfig::paper_defaults(ProtocolKind::Spms, 21);
    oracle_cfg.routing_mode = RoutingMode::Oracle;
    let mut dist_cfg = SimConfig::paper_defaults(ProtocolKind::Spms, 21);
    dist_cfg.routing_mode = RoutingMode::Distributed;
    let a = Simulation::run_with(oracle_cfg, topo.clone(), plan.clone()).unwrap();
    let b = Simulation::run_with(dist_cfg, topo, plan).unwrap();
    // Same converged routes ⇒ same protocol-level message pattern; the
    // distributed run additionally pays routing energy and a pause.
    assert_eq!(a.deliveries, b.deliveries);
    assert_eq!(a.messages.data.value(), b.messages.data.value());
    assert!(b.routing.messages > 0);
    assert_eq!(a.routing.messages, 0);
    assert!(b.energy.total() > a.energy.total());
}

#[test]
fn wider_zones_raise_adv_cost() {
    let narrow = run(ProtocolKind::Spms, 6, 6, 10.0, 13);
    let wide = run(ProtocolKind::Spms, 6, 6, 25.0, 13);
    assert_eq!(narrow.delivery_ratio(), 1.0);
    assert_eq!(wide.delivery_ratio(), 1.0);
    // Every holder advertises once regardless of radius…
    assert_eq!(narrow.messages.adv.value(), wide.messages.adv.value());
    // …but each ADV is broadcast at a stronger level, so the ADV energy
    // grows with the radius (the effect behind Figure 7's widening gap).
    use spms_phy::EnergyCategory;
    assert!(
        wide.energy.get(EnergyCategory::Adv).value()
            > narrow.energy.get(EnergyCategory::Adv).value()
    );
}

#[test]
fn run_metrics_are_internally_consistent() {
    let m = run(ProtocolKind::Spms, 5, 5, 20.0, 17);
    assert_eq!(m.delay_ms.count(), m.deliveries);
    assert!(m.energy.total().value() > 0.0);
    assert!(m.events_processed > 0);
    assert!(m.finished_at > SimTime::ZERO);
    assert_eq!(m.nodes, 25);
    assert_eq!(m.packets_generated, 25);
    let s = m.summary();
    assert!(s.contains("SPMS") && s.contains("25"));
}

#[test]
fn per_node_energy_sums_to_the_network_total() {
    let m = run(ProtocolKind::Spms, 5, 5, 20.0, 19);
    assert_eq!(m.per_node_energy_uj.len(), 25);
    let sum: f64 = m.per_node_energy_uj.iter().sum();
    assert!(
        (sum - m.energy.total().value()).abs() < 1e-6,
        "per-node sum {sum} vs total {}",
        m.energy.total()
    );
    assert!(m.per_node_energy_uj.iter().all(|&e| e >= 0.0));
}

#[test]
fn spms_balances_load_where_spin_burns_the_source() {
    // Single source serving a whole zone: SPIN's source transmits every
    // DATA at maximum power (one white-hot battery); SPMS spreads a
    // smaller total across relays. Max-to-mean per-node energy quantifies
    // it.
    let topo = placement::grid(7, 7, 5.0).unwrap();
    let plan = traffic::single_source(NodeId::new(24), 2, SimTime::from_millis(400)).unwrap();
    let spms = Simulation::run_with(
        SimConfig::paper_defaults(ProtocolKind::Spms, 77),
        topo.clone(),
        plan.clone(),
    )
    .unwrap();
    let spin = Simulation::run_with(
        SimConfig::paper_defaults(ProtocolKind::Spin, 77),
        topo,
        plan,
    )
    .unwrap();
    assert_eq!(spms.delivery_ratio(), 1.0);
    assert_eq!(spin.delivery_ratio(), 1.0);
    assert!(
        spms.energy_imbalance() * 4.0 < spin.energy_imbalance(),
        "SPMS {:.1}x vs SPIN {:.1}x",
        spms.energy_imbalance(),
        spin.energy_imbalance()
    );
    // The hottest SPMS node is cooler than the hottest SPIN node by a
    // large factor — the node-lifetime claim behind the paper's title.
    let hottest = |m: &spms::RunMetrics| {
        m.per_node_energy_uj
            .iter()
            .cloned()
            .fold(f64::NEG_INFINITY, f64::max)
    };
    assert!(hottest(&spms) * 5.0 < hottest(&spin));
}
