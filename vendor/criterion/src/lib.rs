//! Offline drop-in subset of the `criterion` benchmark harness.
//!
//! The build environment has no network access, so the workspace vendors the
//! slice of the criterion API its 14 bench targets use: [`Criterion`],
//! `bench_function`, [`Bencher::iter`], [`black_box`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros (both the positional and
//! the `name = ..; config = ..; targets = ..` forms).
//!
//! Measurement is intentionally simple — a warm-up call followed by
//! `sample_size` timed samples, reporting min/mean — because the repo's
//! tier-1 gate only requires `cargo bench --no-run` to compile everything;
//! actually running a bench still prints honest wall-clock numbers.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// The benchmark harness handle passed to every bench function.
#[derive(Clone, Debug)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_secs(1),
        }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark (builder style).
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Target measurement budget per benchmark (builder style). The vendored
    /// harness treats this as a cap: sampling stops once it is exhausted.
    #[must_use]
    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    /// Run one named benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: Vec::with_capacity(self.sample_size),
        };
        let budget = Instant::now();
        // Warm-up sample, then timed samples until count or budget runs out.
        f(&mut b);
        b.samples.clear();
        for _ in 0..self.sample_size {
            f(&mut b);
            if budget.elapsed() > self.measurement_time {
                break;
            }
        }
        report(id, &b.samples);
        self
    }
}

/// Times one sample of the benchmark body.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<Duration>,
}

impl Bencher {
    /// Time `body` once and record the sample. The return value is passed
    /// through [`black_box`] so the work is not optimized away.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut body: F) {
        let start = Instant::now();
        black_box(body());
        self.samples.push(start.elapsed());
    }
}

fn report(id: &str, samples: &[Duration]) {
    if samples.is_empty() {
        println!("{id:<48} (no samples)");
        return;
    }
    let total: Duration = samples.iter().sum();
    let mean = total / samples.len() as u32;
    let min = samples.iter().min().copied().unwrap_or_default();
    println!(
        "{id:<48} time: [min {:>12.3?}  mean {:>12.3?}]  ({} samples)",
        min,
        mean,
        samples.len()
    );
}

/// Declare a bench group: either `criterion_group!(name, target, ...)` or the
/// braced `name = ..; config = ..; targets = ..` form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declare the bench binary's `main`, running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
