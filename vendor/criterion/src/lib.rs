//! Offline drop-in subset of the `criterion` benchmark harness.
//!
//! The build environment has no network access, so the workspace vendors the
//! slice of the criterion API its 14 bench targets use: [`Criterion`],
//! `bench_function`, [`Bencher::iter`], [`black_box`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros (both the positional and
//! the `name = ..; config = ..; targets = ..` forms).
//!
//! Measurement is intentionally simple — a warm-up call followed by
//! `sample_size` timed samples, reporting min/mean — because the repo's
//! tier-1 gate only requires `cargo bench --no-run` to compile everything;
//! actually running a bench still prints honest wall-clock numbers.
//!
//! When the `CRITERION_JSON` environment variable names a file, every
//! benchmark also appends one JSON line
//! (`{"id":…,"min_ns":…,"mean_ns":…,"samples":…}`) to it. Appending keeps
//! the protocol trivial across the many separate bench binaries of a
//! `cargo bench` invocation; `cargo run -p xtask -- collect` canonicalizes
//! the lines into the sorted `BENCH_*.json` document the CI regression
//! gate (`xtask bench-gate`) consumes.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// The benchmark harness handle passed to every bench function.
#[derive(Clone, Debug)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_secs(1),
        }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark (builder style).
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Target measurement budget per benchmark (builder style). The vendored
    /// harness treats this as a cap: sampling stops once it is exhausted.
    #[must_use]
    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    /// Run one named benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: Vec::with_capacity(self.sample_size),
        };
        let budget = Instant::now();
        // Warm-up sample, then timed samples until count or budget runs out.
        f(&mut b);
        b.samples.clear();
        for _ in 0..self.sample_size {
            f(&mut b);
            if budget.elapsed() > self.measurement_time {
                break;
            }
        }
        report(id, &b.samples);
        self
    }
}

/// Times one sample of the benchmark body.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<Duration>,
}

impl Bencher {
    /// Time `body` once and record the sample. The return value is passed
    /// through [`black_box`] so the work is not optimized away.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut body: F) {
        let start = Instant::now();
        black_box(body());
        self.samples.push(start.elapsed());
    }
}

fn report(id: &str, samples: &[Duration]) {
    if samples.is_empty() {
        println!("{id:<48} (no samples)");
        return;
    }
    let total: Duration = samples.iter().sum();
    let mean = total / samples.len() as u32;
    let min = samples.iter().min().copied().unwrap_or_default();
    println!(
        "{id:<48} time: [min {:>12.3?}  mean {:>12.3?}]  ({} samples)",
        min,
        mean,
        samples.len()
    );
    if let Ok(path) = std::env::var("CRITERION_JSON") {
        if !path.is_empty() {
            append_json_line(&path, id, min, mean, samples.len());
        }
    }
}

/// Appends this benchmark's result as one JSON line. IO failures are
/// reported but never fail the bench run itself.
fn append_json_line(path: &str, id: &str, min: Duration, mean: Duration, samples: usize) {
    use std::io::Write;
    let line = format!(
        "{{\"id\":\"{}\",\"min_ns\":{},\"mean_ns\":{},\"samples\":{}}}\n",
        id.replace('\\', "\\\\").replace('"', "\\\""),
        min.as_nanos(),
        mean.as_nanos(),
        samples
    );
    let written = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .and_then(|mut f| f.write_all(line.as_bytes()));
    if let Err(e) = written {
        eprintln!("criterion: could not append to {path}: {e}");
    }
}

/// Declare a bench group: either `criterion_group!(name, target, ...)` or the
/// braced `name = ..; config = ..; targets = ..` form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declare the bench binary's `main`, running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_lines_append_and_escape() {
        let path =
            std::env::temp_dir().join(format!("criterion_json_test_{}.jsonl", std::process::id()));
        let path_str = path.to_str().unwrap();
        let _ = std::fs::remove_file(&path);
        append_json_line(
            path_str,
            "group/bench \"quoted\"",
            Duration::from_nanos(1500),
            Duration::from_nanos(2500),
            20,
        );
        append_json_line(
            path_str,
            "group/second",
            Duration::from_micros(3),
            Duration::from_micros(4),
            10,
        );
        let text = std::fs::read_to_string(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2, "one line per report");
        assert_eq!(
            lines[0],
            "{\"id\":\"group/bench \\\"quoted\\\"\",\"min_ns\":1500,\"mean_ns\":2500,\
             \"samples\":20}"
        );
        assert_eq!(
            lines[1],
            "{\"id\":\"group/second\",\"min_ns\":3000,\"mean_ns\":4000,\"samples\":10}"
        );
    }
}
