//! Offline, deterministic drop-in subset of the `proptest` crate.
//!
//! The build environment has no network access, so the workspace vendors the
//! slice of the proptest API its test suites actually use:
//!
//! - the [`proptest!`] macro (with `#![proptest_config(..)]` support),
//! - [`prop_assert!`] / [`prop_assert_eq!`],
//! - range strategies over integers and floats, tuple strategies,
//!   [`prelude::any`] for `Arbitrary` types, and `prop::collection::vec`,
//! - [`test_runner::ProptestConfig`] with a **fixed RNG seed by default**, so
//!   every run of the suite explores exactly the same cases (tier-1 never
//!   flakes; no shrinking is needed because failures reproduce verbatim).
//!
//! Unlike upstream proptest there is no shrinking and no persistence file:
//! case generation is a pure function of `(rng_seed, test name, case index)`.

#![forbid(unsafe_code)]

pub mod strategy;
pub mod test_runner;

/// `prop::` namespace mirror (`prop::collection::vec`, ...).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        pub use crate::strategy::vec;
    }
}

/// The usual glob-import surface: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{any, Arbitrary, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Deterministic property-test entry point.
///
/// Supports the two shapes used in this workspace:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]
///     #[test]
///     fn my_prop(x in 0u64..10, y in 1.0f64..2.0) { prop_assert!(x < 10); }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($tail:tt)*) => {
        $crate::__proptest_items! { ($config); $($tail)* }
    };
    ($($tail:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::ProptestConfig::default()); $($tail)* }
    };
}

/// Implementation detail of [`proptest!`]: expands each test fn.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let mut rng = $crate::test_runner::TestRng::for_test(
                    config.rng_seed,
                    stringify!($name),
                );
                let mut passed: u32 = 0;
                let mut rejected: u32 = 0;
                while passed < config.cases {
                    // Snapshot so a failing case can replay its exact inputs
                    // for the report; the happy path pays nothing. The body
                    // may move its args, so they cannot be formatted after
                    // the closure runs.
                    let snapshot = rng.clone();
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    match outcome {
                        ::std::result::Result::Ok(()) => passed += 1,
                        ::std::result::Result::Err(err) if err.is_rejection() => {
                            rejected += 1;
                            if rejected > config.max_global_rejects {
                                panic!(
                                    "proptest `{}`: {} cases rejected by prop_assume! \
                                     (max_global_rejects = {}) — the property is vacuous",
                                    stringify!($name), rejected, config.max_global_rejects,
                                );
                            }
                        }
                        ::std::result::Result::Err(err) => {
                            let mut replay = snapshot;
                            $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut replay);)+
                            panic!(
                                concat!(
                                    "proptest `{}` failed (case {}/{}): {}\n  inputs: ",
                                    $(stringify!($arg), " = {:?}, ",)+ ""
                                ),
                                stringify!($name), passed, config.cases, err, $(&$arg,)+
                            );
                        }
                    }
                }
            }
        )*
    };
}

/// Assert a condition inside a [`proptest!`] body, failing the case (not the
/// whole process) with formatted context.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Equality assertion inside a [`proptest!`] body. Operands are only
/// borrowed, so they stay usable afterwards.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "assertion failed: `{:?}` == `{:?}`", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "{} (left: `{:?}`, right: `{:?}`)",
            format!($($fmt)+), l, r
        );
    }};
}

/// Inequality assertion inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: `{:?}` != `{:?}`", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "{} (left: `{:?}`, right: `{:?}`)",
            format!($($fmt)+), l, r
        );
    }};
}

/// Skip the current case when a precondition does not hold. A rejected case
/// does not count toward `cases`; the runner draws a fresh one, and panics if
/// more than `max_global_rejects` cases are rejected (a vacuous property).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        $crate::prop_assume!($cond, concat!("assumption failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                format!($($fmt)+),
            ));
        }
    };
}
