//! Test-runner configuration and the deterministic RNG behind it.

/// Configuration for one `proptest!` block.
///
/// Every field has a deterministic default: in particular `rng_seed` is a
/// fixed constant, so the suite explores the same cases on every machine and
/// every run. Override per-block with struct-update syntax:
///
/// ```ignore
/// #![proptest_config(ProptestConfig { cases: 24, rng_seed: 0x5EED, ..ProptestConfig::default() })]
/// ```
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of cases each property runs.
    pub cases: u32,
    /// Base seed of the per-test deterministic RNG. The effective stream is
    /// a pure function of `(rng_seed, test name)`, so sibling tests in one
    /// block still draw independent values.
    pub rng_seed: u64,
    /// Upper bound on cases rejected by `prop_assume!` before the runner
    /// panics: a property whose assumption almost never holds is vacuous,
    /// not green.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 64,
            rng_seed: 0x5EED_DA7A_2004_D51F,
            max_global_rejects: 1024,
        }
    }
}

impl ProptestConfig {
    /// A default configuration running `cases` cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..ProptestConfig::default()
        }
    }
}

/// A non-passing outcome of one property case: a `prop_assert!` failure or a
/// `prop_assume!` rejection.
#[derive(Clone, Debug)]
pub struct TestCaseError {
    message: String,
    rejection: bool,
}

impl TestCaseError {
    /// Build a failure carrying `message`.
    #[must_use]
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
            rejection: false,
        }
    }

    /// Build a rejection (`prop_assume!` precondition not met).
    #[must_use]
    pub fn reject(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
            rejection: true,
        }
    }

    /// Whether this is a rejection rather than a failure.
    #[must_use]
    pub fn is_rejection(&self) -> bool {
        self.rejection
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// SplitMix64: tiny, fast, and plenty for case generation.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// An RNG seeded directly with `seed`.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// The RNG for a named test: mixes the test name into the base seed so
    /// each property in a block draws an independent deterministic stream.
    #[must_use]
    pub fn for_test(base_seed: u64, name: &str) -> Self {
        // FNV-1a over the name keeps this stable across compilers and runs.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng::new(base_seed ^ h)
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = TestRng::for_test(1, "t");
        let mut b = TestRng::for_test(1, "t");
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_tests_different_streams() {
        let mut a = TestRng::for_test(1, "alpha");
        let mut b = TestRng::for_test(1, "beta");
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn rejections_are_distinguished_from_failures() {
        assert!(TestCaseError::reject("nope").is_rejection());
        assert!(!TestCaseError::fail("bad").is_rejection());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = TestRng::new(7);
        for _ in 0..1000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }
}
