//! Value-generation strategies.
//!
//! A [`Strategy`] is anything that can produce a value from the deterministic
//! [`TestRng`]. Plain `Range` expressions (`0u64..100`, `1.5f64..2.0`) are
//! strategies, as are tuples of strategies, [`any`] over [`Arbitrary`] types,
//! and the [`vec()`] collection combinator.

use std::ops::Range;

use crate::test_runner::TestRng;

/// A generator of values for one proptest argument.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;
    /// Draw one value from the deterministic stream.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(
                    self.start < self.end,
                    "empty or inverted range strategy {}..{}", self.start, self.end,
                );
                let span = (self.end - self.start) as u128;
                self.start + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! signed_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(
                    self.start < self.end,
                    "empty or inverted range strategy {}..{}", self.start, self.end,
                );
                let span = (self.end as i128 - self.start as i128) as u128;
                ((self.start as i128) + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

signed_range_strategy!(i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(
            self.start < self.end,
            "empty or inverted range strategy {}..{}",
            self.start,
            self.end,
        );
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(
            self.start < self.end,
            "empty or inverted range strategy {}..{}",
            self.start,
            self.end,
        );
        self.start + (rng.next_f64() as f32) * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident),+)),*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($s,)+) = self;
                ($($s.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy!(
    (A),
    (A, B),
    (A, B, C),
    (A, B, C, D),
    (A, B, C, D, E),
    (A, B, C, D, E, F)
);

/// A strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical whole-domain strategy, used via [`any`].
pub trait Arbitrary: Sized {
    /// Draw an unconstrained value of `Self`.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.next_f64()
    }
}

/// The strategy returned by [`any`].
#[derive(Clone, Copy, Debug, Default)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()` — the whole-domain strategy for `T`.
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Length specification accepted by [`vec()`]: a fixed size or a half-open
/// range of sizes.
#[derive(Clone, Debug)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.end > r.start, "empty vec size range");
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

/// The strategy returned by [`vec()`].
#[derive(Clone, Debug)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.hi - self.size.lo) as u64;
        let len = self.size.lo + (rng.next_u64() % span.max(1)) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// `prop::collection::vec(element, len)` — a vector whose length is drawn
/// from `len` and whose elements are drawn from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}
