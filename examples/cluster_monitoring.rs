//! Cluster-based hierarchical monitoring (§5.2): sensor readings flow to
//! cluster heads; nearby nodes eavesdrop with 5% probability.
//!
//! Models the paper's motivating deployment — a field instrumented for
//! environmental monitoring where designated collectors aggregate data.
//!
//! ```text
//! cargo run --release -p spms-workloads --example cluster_monitoring
//! ```

use spms::{ProtocolKind, SimConfig, Simulation};
use spms_kernel::SimTime;
use spms_net::placement;
use spms_phy::RadioProfile;
use spms_workloads::traffic::{self, cluster_assignment};

fn main() -> Result<(), String> {
    let radius = 20.0;
    let topology = placement::grid(10, 10, 5.0)?;
    let clustering = cluster_assignment(&topology, radius)?;
    println!(
        "100-mote field, {} clusters, heads: {:?}\n",
        clustering.heads.len(),
        clustering.heads
    );

    // Every mote reports 2 readings; its cluster head collects them; each
    // zone neighbor is independently interested with probability 5%.
    let plan = traffic::cluster_hierarchical(
        &topology,
        &RadioProfile::mica2(),
        radius,
        2,
        SimTime::from_millis(300),
        0.05,
        2024,
    )?;
    println!(
        "workload: {} readings, {} expected deliveries\n",
        plan.len(),
        plan.expected_deliveries(topology.len())
    );

    for protocol in [ProtocolKind::Spms, ProtocolKind::Spin] {
        let mut config = SimConfig::paper_defaults(protocol, 2024);
        config.zone_radius_m = radius;
        let m = Simulation::run_with(config, topology.clone(), plan.clone())?;
        println!("{}", m.summary());
        println!("  energy: {}\n", m.energy);
    }

    println!("SPMS routes member→head traffic over minimum-power hops, which is");
    println!("where the paper's 35%–59% cluster-mode savings come from (Figure 13).");
    Ok(())
}
