//! Watch the protocol work, packet by packet: runs a small SPMS field
//! with transient failures, then replays the engine trace — transmissions,
//! failures, repairs, deliveries — and summarizes per-tag activity.
//!
//! This is the debugging workflow for protocol work: enable
//! [`spms::SimConfig::trace_capacity`], run with
//! [`spms::Simulation::run_traced`], and read the event log next to the
//! metrics.
//!
//! ```text
//! cargo run -p spms-workloads --example trace_inspector
//! ```

use std::collections::BTreeMap;

use spms::{ProtocolKind, SimConfig, Simulation};
use spms_kernel::SimTime;
use spms_net::{placement, FailureConfig, NodeId};
use spms_workloads::traffic;

fn main() -> Result<(), String> {
    let topo = placement::grid(4, 4, 5.0)?;
    let mut config = SimConfig::paper_defaults(ProtocolKind::Spms, 1234);
    config.failures = Some(FailureConfig {
        mean_interarrival: SimTime::from_millis(40),
        repair_min: SimTime::from_millis(5),
        repair_max: SimTime::from_millis(15),
    });
    config.trace_capacity = Some(4096);
    let plan = traffic::single_source(NodeId::new(5), 2, SimTime::from_millis(400))?;

    let sim = Simulation::new(config, topo, plan)?;
    let (metrics, trace) = sim.run_traced();

    println!("== engine trace: SPMS under transient failures ==\n");
    println!("first 30 events:");
    for e in trace.events().iter().take(30) {
        println!("  {e}");
    }
    if trace.events().len() > 30 {
        println!("  … {} more", trace.events().len() - 30);
    }

    let mut per_tag: BTreeMap<&str, usize> = BTreeMap::new();
    for e in trace.events() {
        *per_tag.entry(e.tag).or_default() += 1;
    }
    println!("\nevents by tag:");
    for (tag, count) in &per_tag {
        println!("  {tag:<6} {count}");
    }
    if trace.dropped() > 0 {
        println!("  (+{} dropped beyond capacity)", trace.dropped());
    }

    println!("\nfailure timeline:");
    for e in trace.with_tag("fail") {
        println!("  {e}");
    }

    println!("\n{}", metrics.summary());
    println!(
        "delivered {}/{} with {} failures injected — every 'fail' above \
         that hit an in-flight exchange cost one τDAT recovery.",
        metrics.deliveries, metrics.deliveries_expected, metrics.failures_injected
    );
    Ok(())
}
