//! See the field: zone structure, an inter-zone route, and where the
//! energy actually goes.
//!
//! Renders (1) the pipeline scenario's geometry — the source's zone and
//! the border-relay chain a query travels, (2) per-node energy heatmaps
//! for SPMS vs SPIN on the paper's grid, making the load distributions
//! visible at a glance: SPIN burns the source's battery (it unicasts the
//! DATA to every zone member at maximum power), while SPMS spreads a much
//! smaller total across the relay mesh — node-lifetime balance is exactly
//! the "energy aware" property the paper's title claims.
//!
//! ```text
//! cargo run --release -p spms-workloads --example field_visualization
//! ```

use spms::{ProtocolKind, SimConfig, Simulation};
use spms_interzone::border_relays;
use spms_kernel::SimTime;
use spms_net::{placement, NodeId, ZoneTable};
use spms_phy::RadioProfile;
use spms_viz::{node_heatmap, sparkline, FieldMap};
use spms_workloads::traffic;

fn main() -> Result<(), String> {
    // ── 1. The inter-zone pipeline geometry ─────────────────────────────
    let line = placement::grid(25, 1, 5.0)?;
    let zones = ZoneTable::build(&line, &RadioProfile::mica2(), 20.0);
    println!("== pipeline field: S = source, D = sink, ~ = S's zone ring ==\n");
    let border = border_relays(&zones, NodeId::new(0));
    let chain: Vec<NodeId> = std::iter::once(NodeId::new(0))
        .chain((1..=6).map(|i| NodeId::new(i * 4)))
        .collect();
    let art = FieldMap::new(&line, 100, 9)?
        .zone(&zones, NodeId::new(0))
        .route(&chain)
        .mark(NodeId::new(0), 'S')
        .mark(NodeId::new(24), 'D')
        .render();
    println!("{art}");
    println!(
        "border relays of S: {border:?} — the query re-broadcasts along the \
         starred chain.\n"
    );

    // ── 2. Energy heatmaps: SPMS vs SPIN on the 7×7 grid ────────────────
    let grid = placement::grid(7, 7, 5.0)?;
    let plan = traffic::single_source(NodeId::new(24), 2, SimTime::from_millis(400))?;
    for protocol in [ProtocolKind::Spms, ProtocolKind::Spin] {
        let config = SimConfig::paper_defaults(protocol, 77);
        let m = Simulation::run_with(config, grid.clone(), plan.clone())?;
        println!(
            "== {} energy heatmap (total {:.2} µJ, imbalance {:.1}×) ==",
            m.protocol,
            m.energy.total().value(),
            m.energy_imbalance()
        );
        print!("{}", node_heatmap(&grid, &m.per_node_energy_uj, 40, 13)?);
        let row: Vec<f64> = m.per_node_energy_uj[21..28].to_vec();
        println!("middle row profile: {}\n", sparkline(&row)?);
    }

    println!(
        "SPIN's map is one white-hot source (it serves every requester with \
         a max-power unicast) over a faintly warm zone; SPMS's map is \
         cooler *and* flatter — less total energy, spread across relays, so \
         no single battery dies first."
    );
    Ok(())
}
