//! The §5.1.3 mobility trade-off: how many packets must flow between
//! mobility epochs before SPMS's savings amortize a routing re-convergence?
//!
//! Runs the analytical break-even model, then verifies the direction in
//! simulation by sweeping the mobility interval.
//!
//! ```text
//! cargo run --release -p spms-workloads --example mobility_tradeoff
//! ```

use spms::{ProtocolKind, RoutingMode, SimConfig, Simulation};
use spms_analysis::BreakevenInstance;
use spms_kernel::SimTime;
use spms_net::{placement, MobilityConfig};
use spms_phy::EnergyCategory;
use spms_workloads::traffic;

fn run(protocol: ProtocolKind, interval: SimTime, seed: u64) -> spms::RunMetrics {
    let topo = placement::grid(7, 7, 5.0).expect("valid grid");
    let mut config = SimConfig::paper_defaults(protocol, seed);
    config.mobility = Some(MobilityConfig::new(interval, 0.05).expect("valid config"));
    if protocol == ProtocolKind::Spms {
        config.routing_mode = RoutingMode::Distributed;
    }
    let plan = traffic::all_to_all(49, 3, SimTime::from_millis(400), seed).expect("valid workload");
    Simulation::run_with(config, topo, plan).expect("run succeeds")
}

fn main() {
    println!("== Analytical break-even (MICA2 reference instance) ==\n");
    let inst = BreakevenInstance::mica2_reference();
    println!("one DBF re-execution  : {:.1} µJ", inst.dbf_energy_uj());
    println!(
        "per-packet energies   : SPIN {:.3} µJ, SPMS {:.3} µJ",
        inst.spin_per_packet_uj, inst.spms_per_packet_uj
    );
    match inst.packets_needed() {
        Ok(p) => println!(
            "break-even            : ≥ {p:.1} packets between epochs \
             (paper reports 239.18 for its instance)\n"
        ),
        Err(e) => println!("break-even            : {e}\n"),
    }

    println!("== Simulation: savings vs mobility interval (49 nodes, r = 20 m) ==\n");
    println!(
        "{:>14} | {:>7} | {:>12} | {:>12} | {:>9} | {:>8}",
        "interval", "epochs", "SPIN µJ/pkt", "SPMS µJ/pkt", "routing %", "savings"
    );
    for interval_ms in [20_000u64, 5_000, 2_000, 800] {
        let interval = SimTime::from_millis(interval_ms);
        let spin = run(ProtocolKind::Spin, interval, 7);
        let spms = run(ProtocolKind::Spms, interval, 7);
        let savings = 1.0 - spms.energy_per_packet_uj() / spin.energy_per_packet_uj();
        let routing_share =
            100.0 * spms.energy.get(EnergyCategory::Routing).value() / spms.energy.total().value();
        println!(
            "{:>12}ms | {:>7} | {:>12.2} | {:>12.2} | {:>8.1}% | {:>7.1}%",
            interval_ms,
            spms.mobility_epochs,
            spin.energy_per_packet_uj(),
            spms.energy_per_packet_uj(),
            routing_share,
            100.0 * savings
        );
    }
    println!("\nMore frequent mobility → more DBF re-executions → smaller savings,");
    println!("exactly the erosion Figure 12 plots (paper: 5%–21% under mobility).");
}
