//! Head-to-head: flooding vs SPIN vs SPMS on the same scenario, with and
//! without transient failures — the protocol-evolution story of the
//! paper's introduction in one table.
//!
//! ```text
//! cargo run --release -p spms-workloads --example protocol_comparison
//! ```

use spms::{ProtocolKind, SimConfig, Simulation};
use spms_kernel::SimTime;
use spms_net::{placement, FailureConfig};
use spms_workloads::traffic;

fn run(protocol: ProtocolKind, failures: bool, seed: u64) -> spms::RunMetrics {
    let topo = placement::grid(7, 7, 5.0).expect("valid grid");
    let mut config = SimConfig::paper_defaults(protocol, seed);
    if failures {
        config.failures = Some(FailureConfig::paper_defaults());
    }
    let plan = traffic::all_to_all(49, 2, SimTime::from_millis(400), seed).expect("valid workload");
    Simulation::run_with(config, topo, plan).expect("run succeeds")
}

fn main() {
    println!("49 motes, 5 m grid, 20 m zones, 2 packets/node all-to-all\n");
    println!(
        "{:<22} | {:>9} | {:>10} | {:>11} | {:>10} | {:>9}",
        "protocol", "delivered", "duplicates", "µJ/packet", "delay ms", "msgs"
    );
    println!("{}", "-".repeat(88));
    for failures in [false, true] {
        for protocol in [
            ProtocolKind::Flooding,
            ProtocolKind::Spin,
            ProtocolKind::Spms,
        ] {
            let m = run(protocol, failures, 99);
            let label = if failures {
                format!("F-{}", m.protocol)
            } else {
                m.protocol.to_string()
            };
            println!(
                "{label:<22} | {:>4}/{:<4} | {:>10} | {:>11.2} | {:>10.2} | {:>9}",
                m.deliveries,
                m.deliveries_expected,
                m.duplicates,
                m.energy_per_packet_uj(),
                m.avg_delay_ms(),
                m.messages.total(),
            );
        }
    }
    println!();
    println!("flooding: implosion (duplicates, full DATA everywhere)");
    println!("SPIN:     negotiation removes blind DATA floods, still max power only");
    println!("SPMS:     negotiation + min-power shortest paths + PRONE/SCONE failover");
}
