//! The §6 future-work scenario, end to end: a source and a sink in
//! separate zones with **nobody interested in between**, served by SPMS-IZ
//! (bordercast metadata queries + source-routed inter-zone requests).
//!
//! The example runs four protocols on the same 120 m pipeline and prints
//! why the extension exists: base SPMS and SPIN strand the data inside the
//! source's zone, flooding delivers at a heavy energy price, and SPMS-IZ
//! delivers at a small multiple of the theoretical minimum.
//!
//! ```text
//! cargo run -p spms-workloads --example interzone_pipeline
//! ```

use spms::{ProtocolKind, RunMetrics, SimConfig, Simulation};
use spms_interzone::border_relays;
use spms_interzone::overlay::PreciseOverlay;
use spms_kernel::SimTime;
use spms_net::{placement, NodeId, ZoneTable};
use spms_phy::RadioProfile;
use spms_workloads::traffic;

fn run(protocol: ProtocolKind, caching: bool) -> Result<RunMetrics, String> {
    let topo = placement::grid(25, 1, 5.0)?;
    let mut config = SimConfig::paper_defaults(protocol, 42);
    config.relay_caching = caching;
    config.serve_from_cache = caching;
    config.horizon = SimTime::from_secs(120);
    let plan = traffic::pipeline(
        NodeId::new(0),
        &[NodeId::new(24)],
        3,
        SimTime::from_millis(500),
    )?;
    Simulation::run_with(config, topo, plan)
}

fn main() -> Result<(), String> {
    println!("== SPMS-IZ: inter-zone dissemination on a 120 m pipeline ==\n");

    // The zone structure the query must cross.
    let topo = placement::grid(25, 1, 5.0)?;
    let zones = ZoneTable::build(&topo, &RadioProfile::mica2(), 20.0);
    let overlay = PreciseOverlay::build(&zones);
    let hops = overlay
        .zone_hops(NodeId::new(0), NodeId::new(24))
        .ok_or("sink unreachable")?;
    println!(
        "source n0 -> sink n24: {hops} zone hops (auto TTL {}), \
         border relays of n0: {:?}\n",
        overlay.suggested_ttl(),
        border_relays(&zones, NodeId::new(0))
    );

    println!(
        "{:<16} {:>10} {:>12} {:>10} {:>8} {:>8}",
        "protocol", "delivered", "energy (µJ)", "delay ms", "ADVs", "DATAs"
    );
    for (label, protocol, caching) in [
        ("SPMS", ProtocolKind::Spms, false),
        ("SPIN", ProtocolKind::Spin, false),
        ("FLOOD", ProtocolKind::Flooding, false),
        ("SPMS-IZ", ProtocolKind::SpmsIz, false),
        ("SPMS-IZ+cache", ProtocolKind::SpmsIz, true),
    ] {
        let m = run(protocol, caching)?;
        println!(
            "{label:<16} {:>7}/{:<2} {:>12.3} {:>10.2} {:>8} {:>8}",
            m.deliveries,
            m.deliveries_expected,
            m.energy.total().value(),
            m.avg_delay_ms(),
            m.messages.adv.value(),
            m.messages.data.value(),
        );
    }

    println!(
        "\nBase SPMS/SPIN strand the data in the source's zone (no interested \
         relay ever re-advertises); flooding pushes the 40 B payload through \
         every node; SPMS-IZ relays 2 B queries via border nodes only and \
         pulls one copy along the shortest path."
    );
    Ok(())
}
