//! The paper's Figure 2 failure walkthrough, step by step.
//!
//! Topology: `A — r1 — r2 — C` in a line (5 m apart, all in each other's
//! zone). This example drives the SPMS state machine directly — the same
//! code the simulator runs — to show the PRONE/SCONE bookkeeping and the
//! failover ladder of §3.4/§3.5.
//!
//! ```text
//! cargo run -p spms-workloads --example failure_recovery
//! ```

use spms::{
    Action, MetaId, NodeView, Packet, Payload, Protocol, SpmsNode, SpmsParams, Timeouts, TimerKind,
};
use spms_kernel::SimTime;
use spms_net::{placement, NodeId, ZoneTable};
use spms_phy::RadioProfile;
use spms_routing::{oracle_tables, RoutingTable};

fn show(actions: &[Action]) {
    for a in actions {
        match a {
            Action::Send(f) => println!(
                "      -> sends {:?} to {:?} at {}",
                f.packet.kind(),
                f.to,
                f.level
            ),
            Action::SetTimer { kind, after, .. } => {
                println!("      -> arms {kind:?} for {after}");
            }
            Action::Delivered { meta } => println!("      -> DELIVERED {meta}"),
            Action::Abandoned { meta } => println!("      -> abandoned {meta}"),
            Action::Duplicate { meta } => println!("      -> duplicate {meta}"),
        }
    }
}

fn main() -> Result<(), String> {
    let topo = placement::grid(4, 1, 5.0)?;
    let zones = ZoneTable::build(&topo, &RadioProfile::mica2(), 20.0);
    let tables: Vec<RoutingTable> = oracle_tables(&zones, 2);
    let a = NodeId::new(0);
    let r1 = NodeId::new(1);
    let r2 = NodeId::new(2);
    let c = NodeId::new(3);
    let meta = MetaId::new(a, 0);
    let timeouts = Timeouts {
        adv: SimTime::from_millis(1),
        dat: SimTime::from_millis_f64(2.5),
    };
    let view_c = NodeView {
        node: c,
        now: SimTime::ZERO,
        zones: &zones,
        routing: &tables[c.index()],
        timeouts,
        battery_frac: 1.0,
        low_battery_threshold: 0.0,
    };
    let adv_from = |from: NodeId| Packet {
        meta,
        from,
        payload: Payload::Adv,
    };

    println!("Figure 2 topology: A(n0) — r1(n1) — r2(n2) — C(n3), 5 m hops\n");

    // ---------------------------------------------------------------
    println!("Case 2 of §3.5: r2 advertises, then fails");
    let mut node_c = SpmsNode::new(SpmsParams::default());

    println!("  C hears A's ADV (15 m away, not a next-hop neighbor):");
    show(&node_c.on_packet(&view_c, &adv_from(a), true));
    println!(
        "      PRONE = {:?}, SCONE = {:?}",
        node_c.prone(meta),
        node_c.scone(meta)
    );

    println!("  C hears r1's ADV (closer, still not adjacent → τADV restarts):");
    show(&node_c.on_packet(&view_c, &adv_from(r1), true));
    println!(
        "      PRONE = {:?}, SCONE = {:?}",
        node_c.prone(meta),
        node_c.scone(meta)
    );

    println!("  C hears r2's ADV (adjacent → request immediately):");
    show(&node_c.on_packet(&view_c, &adv_from(r2), true));
    println!(
        "      PRONE = {:?}, SCONE = {:?}",
        node_c.prone(meta),
        node_c.scone(meta)
    );

    println!("  r2 has failed; C's τDAT expires → fail over to the SCONE (r1), direct:");
    show(&node_c.on_timer(&view_c, meta, TimerKind::DataWait, 1));

    // ---------------------------------------------------------------
    println!("\nCase 1 of §3.5: r2 fails before advertising");
    let mut node_c = SpmsNode::new(SpmsParams::default());

    println!("  C hears r1's ADV only (r2 is down):");
    show(&node_c.on_packet(&view_c, &adv_from(r1), true));

    println!("  τADV expires → REQ to PRONE r1 along the shortest path (via r2, dead):");
    show(&node_c.on_timer(&view_c, meta, TimerKind::AdvWait, 1));

    println!("  τDAT expires → REQ directly to PRONE r1 at higher power:");
    show(&node_c.on_timer(&view_c, meta, TimerKind::DataWait, 1));

    println!("  r1 serves; C receives the data:");
    let data = Packet {
        meta,
        from: r1,
        payload: Payload::Data {
            dest: c,
            route: vec![],
        },
    };
    show(&node_c.on_packet(&view_c, &data, true));
    println!("\nC holds the data: {}", node_c.has_data(meta));
    Ok(())
}
