//! Quickstart: disseminate one sensor reading through a 169-mote field
//! with SPMS and print what it cost.
//!
//! ```text
//! cargo run --release -p spms-workloads --example quickstart
//! ```

use spms::{Generation, Interest, MetaId, ProtocolKind, SimConfig, Simulation, TrafficPlan};
use spms_kernel::SimTime;
use spms_net::{placement, NodeId};

fn main() -> Result<(), String> {
    // The paper's reference deployment: 169 motes on a 5 m grid (uniform
    // density), 20 m transmission radius → ~45-node zones.
    let topology = placement::grid(13, 13, 5.0)?;

    // The center mote observes an event and produces one data item; every
    // other mote wants it.
    let source = NodeId::new(6 * 13 + 6);
    let plan = TrafficPlan::new(
        vec![Generation {
            at: SimTime::ZERO,
            source,
            meta: MetaId::new(source, 0),
        }],
        Interest::AllNodes,
    )?;

    // Table 1 defaults: MICA2 power levels, ADV/REQ = 2 B, DATA = 40 B,
    // adaptive τADV/τDAT, k = 2 routes per destination.
    let config = SimConfig::paper_defaults(ProtocolKind::Spms, 42);
    let metrics = Simulation::run_with(config, topology, plan)?;

    println!("{}", metrics.summary());
    println!();
    println!(
        "deliveries        : {}/{}",
        metrics.deliveries, metrics.deliveries_expected
    );
    println!("avg delay         : {:.2} ms", metrics.avg_delay_ms());
    println!(
        "max delay         : {:.2} ms (farthest corner of the field)",
        metrics.delay_ms.max().unwrap_or(0.0)
    );
    println!("energy, total     : {}", metrics.energy.total());
    println!("energy, breakdown : {}", metrics.energy);
    println!(
        "messages          : {} ADV, {} REQ, {} DATA",
        metrics.messages.adv, metrics.messages.req, metrics.messages.data
    );
    Ok(())
}
